"""Route dispatch and request handlers for the fusion service.

The handler surface mirrors the wizard: register sources, open a session,
advance it step by step (or to completion), decide unsure pairs, download
the fused result — plus snapshot/restore so a session survives a service
restart, and an SSE-style stream of the session's stage/progress events.

URL space (all bodies JSON)::

    GET    /health
    GET    /stats
    GET    /tenants                          POST   /tenants
    DELETE /tenants/{t}
    GET    /tenants/{t}/sources              POST   /tenants/{t}/sources
    DELETE /tenants/{t}/sources/{alias}
    POST   /tenants/{t}/prepare
    POST   /tenants/{t}/query
    GET    /tenants/{t}/sessions             POST   /tenants/{t}/sessions
    GET    /tenants/{t}/sessions/{s}
    POST   /tenants/{t}/sessions/{s}/advance
    POST   /tenants/{t}/sessions/{s}/decisions
    GET    /tenants/{t}/sessions/{s}/snapshot
    GET    /tenants/{t}/sessions/{s}/result
    GET    /tenants/{t}/sessions/{s}/events      (text/event-stream)
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.core.session import DONE, SESSION_STEPS
from repro.engine.io.csv_source import relation_to_csv_text
from repro.engine.relation import Relation
from repro.service.errors import ApiError, error_payload, status_for_exception
from repro.service.journal import relation_from_upload
from repro.service.http import (
    Request,
    read_request,
    start_stream,
    write_response,
    write_stream_event,
)
from repro.service.state import ServiceState, SessionHandle, Tenant

__all__ = ["ServiceApp"]


def _relation_payload(relation: Relation) -> Dict[str, Any]:
    return {
        "columns": list(relation.column_names),
        "rows": [list(values) for values in relation.rows],
        "row_count": len(relation),
    }


def _require(body: Dict[str, Any], key: str) -> Any:
    value = body.get(key)
    if value is None:
        raise ApiError(400, f"missing required field {key!r}", "MissingField")
    return value


class ServiceApp:
    """Connection handler: parse, route, respond, always close."""

    def __init__(self, state: Optional[ServiceState] = None):
        self.state = state if state is not None else ServiceState()

    # -- connection lifecycle ------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self.dispatch(request, writer)
            except Exception as exc:  # uniform error payload, never a traceback
                if not writer.is_closing():
                    await write_response(
                        writer, status_for_exception(exc), error_payload(exc)
                    )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # server shutdown cancels in-flight handlers mid-close
                pass

    # -- routing -------------------------------------------------------------------

    async def dispatch(self, request: Request, writer: asyncio.StreamWriter) -> None:
        method, parts = request.method, request.parts

        if parts == ("health",) and method == "GET":
            return await write_response(
                writer, 200, {"status": "ok", "version": __version__}
            )
        if parts == ("stats",) and method == "GET":
            return await write_response(writer, 200, self.state.stats())
        if parts == ("tenants",):
            if method == "GET":
                return await write_response(
                    writer, 200, {"tenants": sorted(self.state.tenants)}
                )
            if method == "POST":
                tenant = self.state.create_tenant(request.json().get("tenant"))
                return await write_response(writer, 201, {"tenant": tenant.id})
            raise ApiError(405, f"{method} not allowed on /tenants")

        if len(parts) >= 2 and parts[0] == "tenants":
            tenant = self.state.get_tenant(parts[1])
            tail = parts[2:]
            # The event stream follows a session while *other* requests of
            # the same tenant advance it — it must not hold the tenant lock.
            if len(tail) == 3 and tail[0] == "sessions" and tail[2] == "events":
                if method != "GET":
                    raise ApiError(405, "events is a GET stream")
                handle = tenant.get_session(tail[1])
                return await self._stream_events(writer, handle)
            # Reads serialize behind the tenant lock but are never bounced
            # for queue depth; mutations are subject to the bounded queue.
            async with tenant.admit(bounded=method not in ("GET", "HEAD")):
                status, payload = await self._tenant_route(
                    method, tail, request, tenant
                )
            if isinstance(payload, dict) and "__raw__" in payload:
                body, content_type = payload["__raw__"]
                return await write_response(
                    writer, status, body, content_type=content_type
                )
            return await write_response(writer, status, payload)

        raise ApiError(404, f"no route for {request.path!r}", "UnknownRoute")

    async def _tenant_route(
        self, method: str, tail: Tuple[str, ...], request: Request, tenant: Tenant
    ) -> Tuple[int, Any]:
        if tail == ():
            if method == "DELETE":
                self.state.drop_tenant(tenant.id)
                return 200, {"tenant": tenant.id, "deleted": True}
            if method == "GET":
                return 200, {
                    "tenant": tenant.id,
                    "sources": tenant.hummer.sources(),
                    "sessions": sorted(tenant.sessions),
                    "admission": tenant.admission_status(),
                    "clusters": tenant.cluster_diagnostics(),
                }
        if tail == ("sources",):
            if method == "GET":
                return 200, {"sources": tenant.hummer.sources()}
            if method == "POST":
                return await self._register_source(request, tenant)
        if len(tail) == 2 and tail[0] == "sources" and method == "DELETE":
            tenant.hummer.unregister(tail[1])
            tenant.record_unregister(tail[1])
            return 200, {"alias": tail[1], "deleted": True}
        if tail == ("prepare",) and method == "POST":
            return await self._prepare(request, tenant)
        if tail == ("query",) and method == "POST":
            return await self._query(request, tenant)
        if tail == ("sessions",):
            if method == "GET":
                return 200, {
                    "sessions": [
                        handle.status() for _, handle in sorted(tenant.sessions.items())
                    ]
                }
            if method == "POST":
                return await self._create_session(request, tenant)
        if len(tail) >= 2 and tail[0] == "sessions":
            handle = tenant.get_session(tail[1])
            if len(tail) == 2:
                if method == "GET":
                    return 200, handle.status()
            elif len(tail) == 3:
                action = tail[2]
                if action == "advance" and method == "POST":
                    return await self._advance(request, tenant, handle)
                if action == "decisions" and method == "POST":
                    return await self._decisions(request, tenant, handle)
                if action == "snapshot" and method == "GET":
                    return 200, {"snapshot": handle.session.to_dict()}
                if action == "result" and method == "GET":
                    return self._result(request, handle)
            # 4+ segments (or an unknown method/action) fall through to 404
        raise ApiError(
            404, f"no route for {method} /tenants/{tenant.id}/{'/'.join(tail)}",
            "UnknownRoute",
        )

    # -- handlers ------------------------------------------------------------------

    async def _register_source(
        self, request: Request, tenant: Tenant
    ) -> Tuple[int, Any]:
        body = request.json()
        alias = _require(body, "alias")
        relation = relation_from_upload(body)
        await self.state.run_blocking(
            tenant,
            lambda: tenant.hummer.register(
                alias,
                relation,
                description=body.get("description", ""),
                replace=bool(body.get("replace", False)),
                prepare=body.get("prepare"),
            ),
        )
        tenant.record_source(body)
        return 201, {
            "alias": alias,
            "rows": len(relation),
            "columns": list(relation.column_names),
        }

    async def _prepare(self, request: Request, tenant: Tenant) -> Tuple[int, Any]:
        body = request.json()
        mode = body.get("mode")
        if mode is not None:
            tenant.hummer.enable_prepare(mode)
            tenant.record_prepare_mode(mode)
        report = await self.state.run_blocking(
            tenant, lambda: tenant.hummer.prepare(body.get("aliases"))
        )
        return 200, {"report": report}

    async def _query(self, request: Request, tenant: Tenant) -> Tuple[int, Any]:
        statement = _require(request.json(), "statement")
        relation = await self.state.run_blocking(
            tenant, lambda: tenant.hummer.query(statement)
        )
        return 200, _relation_payload(relation)

    async def _create_session(
        self, request: Request, tenant: Tenant
    ) -> Tuple[int, Any]:
        body = request.json()
        snapshot = body.get("snapshot")
        if snapshot is not None:
            # Restore replays completed steps — blocking pipeline work.
            session = await self.state.run_blocking(
                tenant, lambda: tenant.hummer.restore_session(snapshot)
            )
            handle = tenant.add_session(session)
            tenant.record_session(handle)
            return 201, handle.status()
        aliases = _require(body, "aliases")
        session = tenant.hummer.session(
            aliases,
            resolutions=body.get("resolutions"),
            metadata=body.get("metadata"),
        )
        handle = tenant.add_session(session)
        tenant.record_session(handle)
        return 201, handle.status()

    async def _advance(
        self, request: Request, tenant: Tenant, handle: SessionHandle
    ) -> Tuple[int, Any]:
        body = request.json()
        target = body.get("to")
        session = handle.session

        def run() -> None:
            if target is None:
                session.advance()
            elif target == DONE:
                session.run()
            elif target in SESSION_STEPS:
                session.advance_to(target)
            else:
                raise ApiError(
                    400, f"unknown step {target!r} (steps: {', '.join(SESSION_STEPS)})"
                )

        try:
            await self.state.run_blocking(tenant, run)
        finally:
            if session.is_done:
                handle.notify()
        return 200, handle.status()

    async def _decisions(
        self, request: Request, tenant: Tenant, handle: SessionHandle
    ) -> Tuple[int, Any]:
        body = request.json()
        decisions = _require(body, "decisions")
        session = handle.session
        if session.detection is None:
            raise ApiError(
                409, "advance the session through duplicate_detection first",
                "SessionNotAtStep",
            )
        classified = session.detection.classified
        # Validate the whole batch before mutating anything: a malformed
        # item mid-list must not leave earlier items already confirmed.
        parsed = []
        for position, item in enumerate(decisions):
            if not isinstance(item, (list, tuple)) or len(item) != 3:
                raise ApiError(
                    400,
                    f"decision #{position} must be a [left, right, accept] "
                    "triple",
                    "InvalidDecisions",
                )
            left, right, accept = item
            try:
                parsed.append(((int(left), int(right)), bool(accept)))
            except (TypeError, ValueError):
                raise ApiError(
                    400,
                    f"decision #{position} has non-integer row ids: {item!r}",
                    "InvalidDecisions",
                ) from None
        for pair, accept in parsed:
            classified.confirm(pair, accept)
        if body.get("apply", True):
            await self.state.run_blocking(tenant, session.apply_duplicate_decisions)
        tenant.record_session(handle)
        return 200, {
            "decisions": len(classified.decisions),
            "clusters": session.detection.cluster_count,
        }

    def _result(self, request: Request, handle: SessionHandle) -> Tuple[int, Any]:
        session = handle.session
        if not session.is_done or session.result is None:
            raise ApiError(
                409,
                f"session {handle.id!r} is not complete "
                f"(current step: {session.current_step})",
                "SessionNotDone",
            )
        relation = session.result.relation
        if request.query.get("format") == "csv":
            body = relation_to_csv_text(relation).encode("utf-8")
            return 200, {"__raw__": (body, "text/csv; charset=utf-8")}
        payload = _relation_payload(relation)
        payload["summary"] = session.result.summary()
        return 200, payload

    # -- event streaming -----------------------------------------------------------

    async def _stream_events(
        self, writer: asyncio.StreamWriter, handle: SessionHandle
    ) -> None:
        """Replay buffered events, then follow live ones until the session
        completes or its handle is closed (tenant deleted).  The stream is
        EOF-delimited (Connection: close)."""
        await start_stream(writer)
        cursor = 0
        while True:
            while cursor < len(handle.events):
                await write_stream_event(writer, handle.events[cursor])
                cursor += 1
            if handle.session.is_done or handle.closed_reason is not None:
                break
            handle.changed.clear()
            # Re-check before sleeping: an event appended (or the handle
            # closed) between the drain loop and clear() would otherwise be
            # missed until the next wake-up.
            if (
                cursor < len(handle.events)
                or handle.session.is_done
                or handle.closed_reason is not None
            ):
                continue
            await handle.changed.wait()
        await write_stream_event(
            writer,
            {
                "event": "end",
                "session": handle.id,
                "is_done": handle.session.is_done,
                "reason": handle.closed_reason or "completed",
            },
        )
