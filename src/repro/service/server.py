"""Server entry points: event-loop `serve()` and a threaded in-process runner.

``serve`` is what the ``hummer serve`` CLI subcommand runs; it prints the
bound address (port 0 picks an ephemeral port, and callers — the CI smoke
job, the example client — parse the printed line to find it).

:class:`ServiceServer` runs the same app with the event loop on a daemon
thread, so synchronous tests and examples can drive the service over real
sockets without managing a subprocess.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.service.app import ServiceApp
from repro.service.state import ServiceState

__all__ = ["ServiceServer", "serve"]


async def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    state: Optional[ServiceState] = None,
    announce=print,
) -> None:
    """Run the fusion service until cancelled.

    Args:
        host: interface to bind.
        port: TCP port; ``0`` binds an ephemeral port.
        state: pre-populated service state (defaults to an empty registry).
        announce: called once with the human-readable "listening" line —
            the CLI prints it (flushed) so wrappers can parse the port.
    """
    app = ServiceApp(state)
    # Recover journaled tenants before accepting traffic — requests must
    # never observe a half-rebuilt registry.
    recovery = app.state.recover()
    server = await asyncio.start_server(app.handle_connection, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    # The "listening" line stays first — wrappers parse it for the port.
    announce(f"listening on http://{host}:{bound_port}")
    if recovery["tenants"]:
        announce(
            f"recovered {recovery['tenants']} tenant(s), "
            f"{recovery['sessions']} session(s) from the data dir"
        )
    for error in recovery["errors"]:
        announce(f"recovery warning: {error}")
    try:
        async with server:
            await server.serve_forever()
    finally:
        app.state.close()


class ServiceServer:
    """The service on a background thread, for tests and examples.

    Usage::

        with ServiceServer() as server:
            client = ServiceClient(server.base_url)
            ...
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 state: Optional[ServiceState] = None):
        self.host = host
        self.port = port
        self.app = ServiceApp(state)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def state(self) -> ServiceState:
        return self.app.state

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="hummer-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("service failed to start within 10s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def bootstrap():
            self.app.state.recover()
            server = await asyncio.start_server(
                self.app.handle_connection, self.host, self.port
            )
            self._server = server
            self.port = server.sockets[0].getsockname()[1]
            self._started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(bootstrap())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        loop, server = self._loop, self._server
        if loop is None or self._thread is None:
            return

        def shutdown():
            if server is not None:
                server.close()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        loop.call_soon_threadsafe(shutdown)
        self._thread.join(timeout=10)
        self.state.close()
        self._thread = None
        self._loop = None
        self._server = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
