"""Exception hierarchy for the HumMer reproduction.

Every error raised by the library derives from :class:`HummerError`, so
callers can catch a single type at the API boundary.  Sub-hierarchies mirror
the subsystems: the relational engine, the Fuse By query language, schema
matching, duplicate detection and conflict resolution.
"""

from __future__ import annotations


class HummerError(Exception):
    """Base class for every error raised by the library."""


class ConfigError(HummerError, ValueError):
    """A :class:`repro.config.FusionConfig` (or one of its sections) is invalid.

    Subclasses :class:`ValueError` so call sites that predate the typed
    config tree — where the same mistakes surfaced as scattered
    ``ValueError``\\ s — keep working unchanged.
    """


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class EngineError(HummerError):
    """Base class for errors raised by :mod:`repro.engine`."""


class SchemaError(EngineError):
    """A schema is malformed or an operation is incompatible with it."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema."""

    def __init__(self, column: str, available: tuple = ()):
        self.column = column
        self.available = tuple(available)
        message = f"unknown column {column!r}"
        if self.available:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)


class DuplicateColumnError(SchemaError):
    """Two columns in one schema share a name."""


class TypeCoercionError(EngineError):
    """A value could not be coerced to the declared column type."""


class ExpressionError(EngineError):
    """An expression is malformed or cannot be evaluated."""


class CatalogError(EngineError):
    """A source alias is unknown or already registered."""


class SourceError(EngineError):
    """A data source (CSV, JSON, ...) could not be read."""


# ---------------------------------------------------------------------------
# Fuse By query language
# ---------------------------------------------------------------------------


class QueryError(HummerError):
    """Base class for errors raised by :mod:`repro.fuseby`."""


class LexerError(QueryError):
    """The query text contains an illegal token."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        self.position = position
        self.line = line
        if line >= 0:
            message = f"line {line}: {message}"
        super().__init__(message)


class ParseError(QueryError):
    """The query text does not conform to the Fuse By grammar."""

    def __init__(self, message: str, token=None):
        self.token = token
        if token is not None:
            message = f"{message} (near {token!r})"
        super().__init__(message)


class PlanningError(QueryError):
    """The query is grammatical but cannot be planned (semantic error)."""


class UnknownFunctionError(PlanningError):
    """A RESOLVE clause names a conflict-resolution function that is not registered."""


# ---------------------------------------------------------------------------
# Schema matching
# ---------------------------------------------------------------------------


class MatchingError(HummerError):
    """Base class for errors raised by :mod:`repro.matching`."""


class InsufficientDuplicatesError(MatchingError):
    """Not enough seed duplicates could be found to derive correspondences."""


# ---------------------------------------------------------------------------
# Duplicate detection
# ---------------------------------------------------------------------------


class DedupError(HummerError):
    """Base class for errors raised by :mod:`repro.dedup`."""


# ---------------------------------------------------------------------------
# Conflict resolution / fusion
# ---------------------------------------------------------------------------


class FusionError(HummerError):
    """Base class for errors raised by :mod:`repro.core`."""


class ResolutionError(FusionError):
    """A conflict-resolution function failed or was misused."""


class UnknownResolutionFunctionError(ResolutionError):
    """The requested resolution function is not registered."""

    def __init__(self, name: str, available: tuple = ()):
        self.name = name
        self.available = tuple(available)
        message = f"unknown resolution function {name!r}"
        if self.available:
            message += f" (registered: {', '.join(sorted(self.available))})"
        super().__init__(message)
