"""Command-line interface.

Three sub-commands mirror the demo's workflow:

* ``hummer query --source alias=file.csv ... "SELECT ... FUSE FROM ..."`` —
  the basic SQL interface.
* ``hummer fuse --source alias=file.csv ...`` — the fully automatic pipeline
  with a summary of every phase.
* ``hummer demo [cds|students|crisis]`` — run one of the paper's scenarios on
  generated data and print the intermediate artefacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.datagen.scenarios import cd_stores_scenario, crisis_scenario, students_scenario
from repro.dedup.blocking import BLOCKING_STRATEGIES, format_plan_report, resolve_blocking
from repro.dedup.executor import executor_for_workers
from repro.engine.io.csv_source import CsvSource, write_csv
from repro.engine.io.json_source import JsonSource
from repro.hummer import HumMer

__all__ = ["main", "build_parser"]


def _parse_source(argument: str) -> Tuple[str, str]:
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            f"--source must look like alias=path.csv, got {argument!r}"
        )
    alias, path = argument.split("=", 1)
    return alias.strip(), path.strip()


def _add_blocking_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blocking",
        default="allpairs",
        metavar="STRATEGY",
        help="candidate-pair blocking strategy: one of "
        f"{', '.join(sorted(BLOCKING_STRATEGIES))}, or a composite "
        "'union:a+b' spelling (e.g. union:snm+token).  allpairs is exact; "
        "snm and token trade a little candidate recall for near-linear "
        "scaling; adaptive profiles the input and picks a plan itself",
    )
    parser.add_argument(
        "--snm-window",
        type=int,
        default=None,
        help="sorted-neighborhood window size (only with --blocking snm)",
    )
    parser.add_argument(
        "--token-max-block",
        type=int,
        default=None,
        help="largest token block kept as candidates (only with --blocking token)",
    )


def _add_prepare_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prepare",
        action="store_true",
        help="build per-source artifacts (token index, TF-IDF seeding "
        "statistics, planner profile) at registration and merge them at "
        "query time; repeated runs over unchanged sources skip the "
        "preparation-bound work entirely",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="persist prepared artifacts to this directory (implies "
        "--prepare); a later invocation with the same directory and "
        "unchanged sources starts warm",
    )


def _prepare_mode(args):
    # lazy: the pipeline's prepare phase builds on first use, so the
    # summary's reuse/rebuild counters tell the whole story of a run
    return "lazy" if (args.prepare or args.artifact_dir) else None


def _print_prepare_report(result) -> None:
    """Print the artifact reuse/rebuild counters of a prepared run."""
    if result.prepared is None:
        return
    print(
        f"artifacts: {result.prepared.get('reused', 0)} reused, "
        f"{result.prepared.get('rebuilt', 0)} rebuilt "
        f"(prepare phase {result.timings.prepare:.3f}s)"
    )


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for candidate-pair scoring (1 or omitted = "
        "serial; N>1 = multiprocess with N workers)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="candidate pairs per scoring batch (only with --workers N>1; "
        "default splits the candidates into ~4 batches per worker)",
    )


def _build_executor(args):
    if args.chunk_size is not None and (args.workers is None or args.workers <= 1):
        raise ValueError("--chunk-size only applies with --workers greater than 1")
    return executor_for_workers(args.workers, chunk_size=args.chunk_size)


def _build_blocking(args):
    if args.snm_window is not None and args.blocking != "snm":
        raise ValueError("--snm-window only applies with --blocking snm")
    if args.token_max_block is not None and args.blocking != "token":
        raise ValueError("--token-max-block only applies with --blocking token")
    options = {}
    if args.blocking == "snm" and args.snm_window is not None:
        options["window"] = args.snm_window
    if args.blocking == "token" and args.token_max_block is not None:
        options["max_block_size"] = args.token_max_block
    return resolve_blocking(args.blocking, **options)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``hummer`` entry point."""
    parser = argparse.ArgumentParser(
        prog="hummer",
        description="HumMer: ad-hoc declarative fusion of heterogeneous, dirty data.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a Fuse By / SQL statement")
    query.add_argument("statement", help="the query text")
    query.add_argument(
        "--source",
        action="append",
        default=[],
        type=_parse_source,
        help="register a source as alias=path (.csv or .json); repeatable",
    )
    query.add_argument("--output", help="write the result to this CSV file")
    query.add_argument("--limit", type=int, default=25, help="rows to print")

    fuse = subparsers.add_parser("fuse", help="run the automatic fusion pipeline")
    fuse.add_argument(
        "--source",
        action="append",
        default=[],
        type=_parse_source,
        required=True,
        help="register a source as alias=path (.csv or .json); repeatable",
    )
    fuse.add_argument("--threshold", type=float, default=0.75, help="duplicate threshold")
    fuse.add_argument("--output", help="write the fused result to this CSV file")
    fuse.add_argument("--limit", type=int, default=25, help="rows to print")
    _add_blocking_arguments(fuse)
    _add_executor_arguments(fuse)
    _add_prepare_arguments(fuse)

    demo = subparsers.add_parser("demo", help="run a built-in scenario on generated data")
    demo.add_argument(
        "scenario",
        choices=["cds", "students", "crisis"],
        help="which of the paper's scenarios to run",
    )
    demo.add_argument("--entities", type=int, default=60, help="entities to generate")
    demo.add_argument("--limit", type=int, default=15, help="rows to print")
    _add_blocking_arguments(demo)
    _add_executor_arguments(demo)
    _add_prepare_arguments(demo)
    return parser


def _register_sources(hummer: HumMer, sources: List[Tuple[str, str]]) -> None:
    for alias, path in sources:
        if path.lower().endswith(".json"):
            hummer.register(alias, JsonSource(path, name=alias))
        else:
            hummer.register(alias, CsvSource(path, name=alias))


def _command_query(args) -> int:
    hummer = HumMer()
    _register_sources(hummer, args.source)
    result = hummer.query(args.statement)
    print(result.to_text(limit=args.limit))
    if args.output:
        write_csv(result, args.output)
        print(f"\nwrote {len(result)} rows to {args.output}")
    return 0


def _print_blocking_plan(statistics) -> None:
    """Print a deciding strategy's plan report, if one was recorded."""
    if statistics.blocking_plan is None:
        return
    for line in format_plan_report(statistics.blocking_plan):
        print(line)


def _command_fuse(args) -> int:
    hummer = HumMer(
        duplicate_threshold=args.threshold,
        blocking=_build_blocking(args),
        executor=_build_executor(args),
        prepare=_prepare_mode(args),
        artifact_dir=args.artifact_dir,
    )
    _register_sources(hummer, args.source)
    aliases = [alias for alias, _ in args.source]
    result = hummer.fuse(aliases)
    summary = result.summary()
    print("pipeline summary:")
    for key, value in summary.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}: {rendered}")
    _print_prepare_report(result)
    _print_blocking_plan(result.detection.filter_statistics)
    print()
    print(result.relation.to_text(limit=args.limit))
    if args.output:
        write_csv(result.relation, args.output)
        print(f"\nwrote {len(result.relation)} rows to {args.output}")
    return 0


def _command_demo(args) -> int:
    builders = {
        "cds": cd_stores_scenario,
        "students": students_scenario,
        "crisis": crisis_scenario,
    }
    dataset = builders[args.scenario](entity_count=args.entities)
    hummer = HumMer(
        blocking=_build_blocking(args),
        executor=_build_executor(args),
        prepare=_prepare_mode(args),
        artifact_dir=args.artifact_dir,
    )
    for name, relation in dataset.sources.items():
        hummer.register(name, relation)
    print(f"scenario {args.scenario!r}: sources {', '.join(dataset.sources)}")
    result = hummer.fuse(list(dataset.sources))
    print("correspondences found:")
    for correspondence in result.correspondences:
        print(f"  {correspondence}")
    print()
    counts = result.detection.classified.counts
    statistics = result.detection.filter_statistics
    print(
        f"blocking ({args.blocking}): {statistics.blocking_candidates} of "
        f"{statistics.total_pairs} possible pairs proposed, "
        f"{statistics.compared} compared in full "
        f"(scoring: {hummer.detector.executor.name})"
    )
    _print_prepare_report(result)
    _print_blocking_plan(statistics)
    print(
        f"duplicates: {counts['sure_duplicates']} sure, {counts['unsure']} unsure, "
        f"{counts['sure_non_duplicates']} non-duplicates; "
        f"{result.detection.cluster_count} distinct objects"
    )
    print(
        f"conflicts: {result.conflicts.contradiction_count} contradictions, "
        f"{result.conflicts.uncertainty_count} uncertainties"
    )
    print()
    print(result.relation.to_text(limit=args.limit))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"query": _command_query, "fuse": _command_fuse, "demo": _command_demo}
    try:
        return handlers[args.command](args)
    except Exception as exc:  # surface library errors as plain messages
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
