"""Command-line interface.

Four sub-commands mirror the demo's workflow:

* ``hummer query --source alias=file.csv ... "SELECT ... FUSE FROM ..."`` —
  the basic SQL interface.
* ``hummer fuse --source alias=file.csv ...`` — the fully automatic pipeline
  with a summary of every phase.
* ``hummer demo [cds|students|crisis]`` — run one of the paper's scenarios on
  generated data and print the intermediate artefacts.
* ``hummer serve [--host H] [--port P]`` — the multi-tenant HTTP fusion
  service (``--port 0`` binds an ephemeral port; the bound address is
  printed as ``listening on http://H:P``).

Every sub-command accepts ``--config fusion.json`` — a JSON document in the
shape of :meth:`repro.config.FusionConfig.to_dict` — and the individual
flags (``--blocking``, ``--workers``, ``--prepare``, …) are mapped over it
through :meth:`FusionConfig.from_cli_args`, so a config file and ad-hoc
flags compose: flags the user sets win, everything else comes from the file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.config import FusionConfig, load_config_data
from repro.datagen.scenarios import cd_stores_scenario, crisis_scenario, students_scenario
from repro.dedup.blocking import BLOCKING_STRATEGIES, format_plan_report
from repro.dedup.graphcluster import CLUSTERING_STRATEGIES
from repro.engine.io.csv_source import CsvSource, write_csv
from repro.engine.io.json_source import JsonSource
from repro.hummer import HumMer

__all__ = ["main", "build_parser"]

#: The ``fuse`` sub-command's historical default duplicate threshold, applied
#: when neither ``--threshold`` nor a config file sets one.
FUSE_DEFAULT_THRESHOLD = 0.75


def _parse_source(argument: str) -> Tuple[str, str]:
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            f"--source must look like alias=path.csv, got {argument!r}"
        )
    alias, path = argument.split("=", 1)
    return alias.strip(), path.strip()


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON fusion config file (the FusionConfig tree: matching / "
        "dedup / prepare / resolution sections); individual flags override "
        "the file's fields",
    )


def _add_blocking_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blocking",
        default=None,
        metavar="STRATEGY",
        help="candidate-pair blocking strategy: one of "
        f"{', '.join(sorted(BLOCKING_STRATEGIES))}, or a composite "
        "'union:a+b' spelling (e.g. union:snm+token).  allpairs (the "
        "default) is exact; snm and token trade a little candidate recall "
        "for near-linear scaling; adaptive profiles the input and picks a "
        "plan itself",
    )
    parser.add_argument(
        "--snm-window",
        type=int,
        default=None,
        help="sorted-neighborhood window size (only with --blocking snm)",
    )
    parser.add_argument(
        "--token-max-block",
        type=int,
        default=None,
        help="largest token block kept as candidates (only with --blocking token)",
    )


def _add_clustering_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--clustering",
        default=None,
        metavar="STRATEGY",
        help="duplicate-grouping strategy: one of "
        f"{', '.join(sorted(CLUSTERING_STRATEGIES))}.  transitive (the "
        "default) closes accepted pairs into connected components as in the "
        "paper; graph audits sparse components and splits them at weak "
        "min-cut seams; biclique covers the cross-source pair graph with "
        "maximal bicliques — both kill chains of unrelated entities merged "
        "through one borderline pair",
    )


def _add_prepare_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prepare",
        action="store_true",
        help="build per-source artifacts (token index, TF-IDF seeding "
        "statistics, planner profile, SoftTFIDF field corpus) at "
        "registration and merge them at query time; repeated runs over "
        "unchanged sources skip the preparation-bound work entirely",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="persist prepared artifacts to this directory (implies "
        "--prepare); a later invocation with the same directory and "
        "unchanged sources starts warm",
    )


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for candidate-pair scoring (1 or omitted = "
        "serial; N>1 = multiprocess with N workers)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="candidate pairs per scoring batch (only with --workers N>1; "
        "default splits the candidates into ~4 batches per worker)",
    )


def _build_config(args, default_threshold: Optional[float] = None) -> FusionConfig:
    """The effective :class:`FusionConfig`: file (if any), then flags on top."""
    config_path = getattr(args, "config", None)
    data = load_config_data(config_path) if config_path else {}
    base = FusionConfig.from_dict(data)
    file_sets_threshold = (
        isinstance(data.get("dedup"), dict) and "threshold" in data["dedup"]
    )
    if (
        default_threshold is not None
        and getattr(args, "threshold", None) is None
        and not file_sets_threshold
    ):
        base = base.merged({"dedup": {"threshold": default_threshold}})
    return FusionConfig.from_cli_args(args, base=base)


def _print_prepare_report(result) -> None:
    """Print the artifact reuse/rebuild counters of a prepared run."""
    if result.prepared is None:
        return
    print(
        f"artifacts: {result.prepared.get('reused', 0)} reused, "
        f"{result.prepared.get('rebuilt', 0)} rebuilt "
        f"(prepare phase {result.timings.prepare:.3f}s)"
    )
    summary = result.summary()
    print(
        f"  match artifacts: {summary.get('match_artifacts_reused', 0)} reused, "
        f"{summary.get('match_artifacts_rebuilt', 0)} rebuilt "
        "(seeding statistics + field corpora)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``hummer`` entry point."""
    parser = argparse.ArgumentParser(
        prog="hummer",
        description="HumMer: ad-hoc declarative fusion of heterogeneous, dirty data.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a Fuse By / SQL statement")
    query.add_argument("statement", help="the query text")
    query.add_argument(
        "--source",
        action="append",
        default=[],
        type=_parse_source,
        help="register a source as alias=path (.csv or .json); repeatable",
    )
    query.add_argument("--output", help="write the result to this CSV file")
    query.add_argument("--limit", type=int, default=25, help="rows to print")
    _add_config_argument(query)

    fuse = subparsers.add_parser("fuse", help="run the automatic fusion pipeline")
    fuse.add_argument(
        "--source",
        action="append",
        default=[],
        type=_parse_source,
        required=True,
        help="register a source as alias=path (.csv or .json); repeatable",
    )
    fuse.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=f"duplicate threshold (default {FUSE_DEFAULT_THRESHOLD})",
    )
    fuse.add_argument("--output", help="write the fused result to this CSV file")
    fuse.add_argument("--limit", type=int, default=25, help="rows to print")
    _add_config_argument(fuse)
    _add_blocking_arguments(fuse)
    _add_clustering_arguments(fuse)
    _add_executor_arguments(fuse)
    _add_prepare_arguments(fuse)

    demo = subparsers.add_parser("demo", help="run a built-in scenario on generated data")
    demo.add_argument(
        "scenario",
        choices=["cds", "students", "crisis"],
        help="which of the paper's scenarios to run",
    )
    demo.add_argument("--entities", type=int, default=60, help="entities to generate")
    demo.add_argument("--limit", type=int, default=15, help="rows to print")
    _add_config_argument(demo)
    _add_blocking_arguments(demo)
    _add_clustering_arguments(demo)
    _add_executor_arguments(demo)
    _add_prepare_arguments(demo)

    serve = subparsers.add_parser(
        "serve", help="run the multi-tenant HTTP fusion service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--step-timeout",
        type=float,
        default=300.0,
        help="per-request ceiling in seconds on blocking pipeline work "
        "(exceeding it returns 504 for that request)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads shared by all tenants for pipeline steps",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=4,
        help="per-tenant bound on requests queued behind the tenant lock "
        "(exceeding it returns 429 TenantBusy)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help="directory for durable state: per-tenant artifact caches and "
        "journals; a restarted service pointed at the same directory "
        "recovers every tenant and session",
    )
    return parser


def _register_sources(hummer: HumMer, sources: List[Tuple[str, str]]) -> None:
    for alias, path in sources:
        if path.lower().endswith(".json"):
            hummer.register(alias, JsonSource(path, name=alias))
        else:
            hummer.register(alias, CsvSource(path, name=alias))


def _command_query(args) -> int:
    hummer = HumMer(config=_build_config(args))
    _register_sources(hummer, args.source)
    result = hummer.query(args.statement)
    print(result.to_text(limit=args.limit))
    if args.output:
        write_csv(result, args.output)
        print(f"\nwrote {len(result)} rows to {args.output}")
    return 0


def _print_blocking_plan(statistics) -> None:
    """Print a deciding strategy's plan report, if one was recorded."""
    if statistics.blocking_plan is None:
        return
    for line in format_plan_report(statistics.blocking_plan):
        print(line)


def _print_clustering_report(detection) -> None:
    """Print what the clustering strategy did to the accepted pair graph."""
    report = detection.clustering_report
    if report is None:
        return
    line = (
        f"clustering ({report.strategy}): {report.clusters} clusters, "
        f"largest {report.largest_cluster}"
    )
    if report.strategy != "transitive":
        line += (
            f", {report.chains_split} chains split "
            f"({report.edges_cut} of {report.edges} accepted edges cut)"
        )
    print(line)
    for key, value in sorted(report.diagnostics.items()):
        print(f"  {key}: {value}")


def _command_fuse(args) -> int:
    config = _build_config(args, default_threshold=FUSE_DEFAULT_THRESHOLD)
    hummer = HumMer(config=config)
    _register_sources(hummer, args.source)
    aliases = [alias for alias, _ in args.source]
    result = hummer.fuse(aliases)
    summary = result.summary()
    print("pipeline summary:")
    for key, value in summary.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}: {rendered}")
    _print_prepare_report(result)
    _print_blocking_plan(result.detection.filter_statistics)
    _print_clustering_report(result.detection)
    print()
    print(result.relation.to_text(limit=args.limit))
    if args.output:
        write_csv(result.relation, args.output)
        print(f"\nwrote {len(result.relation)} rows to {args.output}")
    return 0


def _command_demo(args) -> int:
    builders = {
        "cds": cd_stores_scenario,
        "students": students_scenario,
        "crisis": crisis_scenario,
    }
    dataset = builders[args.scenario](entity_count=args.entities)
    config = _build_config(args)
    hummer = HumMer(config=config)
    for name, relation in dataset.sources.items():
        hummer.register(name, relation)
    print(f"scenario {args.scenario!r}: sources {', '.join(dataset.sources)}")
    result = hummer.fuse(list(dataset.sources))
    print("correspondences found:")
    for correspondence in result.correspondences:
        print(f"  {correspondence}")
    print()
    counts = result.detection.classified.counts
    statistics = result.detection.filter_statistics
    print(
        f"blocking ({config.dedup.blocking or 'allpairs'}): "
        f"{statistics.blocking_candidates} of "
        f"{statistics.total_pairs} possible pairs proposed, "
        f"{statistics.compared} compared in full "
        f"(scoring: {hummer.detector.executor.name})"
    )
    _print_prepare_report(result)
    _print_blocking_plan(statistics)
    _print_clustering_report(result.detection)
    print(
        f"duplicates: {counts['sure_duplicates']} sure, {counts['unsure']} unsure, "
        f"{counts['sure_non_duplicates']} non-duplicates; "
        f"{result.detection.cluster_count} distinct objects"
    )
    print(
        f"conflicts: {result.conflicts.contradiction_count} contradictions, "
        f"{result.conflicts.uncertainty_count} uncertainties"
    )
    print()
    print(result.relation.to_text(limit=args.limit))
    return 0


def _command_serve(args) -> int:
    import asyncio

    from repro.service.server import serve
    from repro.service.state import ServiceState

    state = ServiceState(
        step_timeout=args.step_timeout,
        max_workers=args.workers,
        max_queued=args.max_queued,
        data_dir=args.data_dir,
    )

    def announce(line: str) -> None:
        # wrappers (the CI smoke job, the example client) parse this line
        # to discover an ephemeral port, so it must flush immediately
        print(line, flush=True)

    try:
        asyncio.run(serve(args.host, args.port, state=state, announce=announce))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "query": _command_query,
        "fuse": _command_fuse,
        "demo": _command_demo,
        "serve": _command_serve,
    }
    try:
        return handlers[args.command](args)
    except Exception as exc:  # surface library errors as plain messages
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
