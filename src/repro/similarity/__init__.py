"""String and value similarity measures.

These are the measures the paper's components rely on:

* **TF-IDF cosine similarity** over whole-tuple strings — used by DUMAS to
  find seed duplicates in unaligned tables.
* **SoftTFIDF** (Cohen, Ravikumar & Fienberg 2003) — used for the field-wise
  comparison of seed duplicates during schema matching.
* **Edit distance** (Levenshtein), **Jaro / Jaro-Winkler**, n-gram and
  Jaccard similarities, and **numeric / date distance** — used by the
  duplicate-detection similarity measure.

All similarities are normalised to ``[0, 1]`` where 1 means identical.
"""

from repro.similarity.base import SimilarityMeasure, TokenSimilarity
from repro.similarity.tokenize import tokenize, qgrams, normalize_text
from repro.similarity.levenshtein import (
    levenshtein_distance,
    levenshtein_similarity,
    LevenshteinSimilarity,
)
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity, JaroWinklerSimilarity
from repro.similarity.ngram import ngram_similarity, NgramSimilarity
from repro.similarity.jaccard import jaccard_similarity, dice_similarity, JaccardSimilarity
from repro.similarity.monge_elkan import monge_elkan_similarity, MongeElkanSimilarity
from repro.similarity.tfidf import TfIdfVectorizer, TfIdfSimilarity, cosine_similarity
from repro.similarity.soft_tfidf import SoftTfIdfSimilarity
from repro.similarity.numeric import numeric_similarity, date_similarity, value_similarity

__all__ = [
    "SimilarityMeasure",
    "TokenSimilarity",
    "tokenize",
    "qgrams",
    "normalize_text",
    "levenshtein_distance",
    "levenshtein_similarity",
    "LevenshteinSimilarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "JaroWinklerSimilarity",
    "ngram_similarity",
    "NgramSimilarity",
    "jaccard_similarity",
    "dice_similarity",
    "JaccardSimilarity",
    "monge_elkan_similarity",
    "MongeElkanSimilarity",
    "TfIdfVectorizer",
    "TfIdfSimilarity",
    "cosine_similarity",
    "SoftTfIdfSimilarity",
    "numeric_similarity",
    "date_similarity",
    "value_similarity",
]
