"""Jaccard and Dice token-set similarities."""

from __future__ import annotations

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import tokenize

__all__ = ["jaccard_similarity", "dice_similarity", "JaccardSimilarity"]


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard coefficient of the word-token sets of the two strings."""
    left_tokens = set(tokenize(left))
    right_tokens = set(tokenize(right))
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


def dice_similarity(left: str, right: str) -> float:
    """Dice coefficient of the word-token sets of the two strings."""
    left_tokens = set(tokenize(left))
    right_tokens = set(tokenize(right))
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    return 2.0 * intersection / (len(left_tokens) + len(right_tokens))


class JaccardSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`jaccard_similarity`."""

    def compare(self, left: str, right: str) -> float:
        return jaccard_similarity(left, right)
