"""Jaccard and Dice token-set similarities."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import tokenize

__all__ = ["jaccard_similarity", "dice_similarity", "JaccardSimilarity"]


def jaccard_similarity(left: str, right: str) -> float:
    """Jaccard coefficient of the word-token sets of the two strings."""
    left_tokens = set(tokenize(left))
    right_tokens = set(tokenize(right))
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


def dice_similarity(left: str, right: str) -> float:
    """Dice coefficient of the word-token sets of the two strings."""
    left_tokens = set(tokenize(left))
    right_tokens = set(tokenize(right))
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    return 2.0 * intersection / (len(left_tokens) + len(right_tokens))


class JaccardSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`jaccard_similarity`."""

    def compare(self, left: str, right: str) -> float:
        return jaccard_similarity(left, right)

    def compare_batch(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        """Batch kernel: tokenise each distinct value once across the batch.

        A candidate column repeats values, and both sides of different pairs
        often share values; the per-pair set arithmetic is cheap next to
        tokenisation, so memoising value → token set removes most of the
        cost.  Scores are bit-identical to the per-pair loop —
        ``jaccard_similarity`` is a pure function of the two token sets.
        """
        if len(left_values) != len(right_values):
            raise ValueError(
                f"batch sides differ in length: {len(left_values)} vs {len(right_values)}"
            )
        token_sets: Dict[str, FrozenSet[str]] = {}

        def tokens(value: str) -> FrozenSet[str]:
            cached = token_sets.get(value)
            if cached is None:
                cached = frozenset(tokenize(value))
                token_sets[value] = cached
            return cached

        scores: List[float] = []
        for left, right in zip(left_values, right_values):
            left_tokens = tokens(left)
            right_tokens = tokens(right)
            if not left_tokens and not right_tokens:
                scores.append(1.0)
            elif not left_tokens or not right_tokens:
                scores.append(0.0)
            else:
                intersection = len(left_tokens & right_tokens)
                union = len(left_tokens | right_tokens)
                scores.append(intersection / union)
        return scores
