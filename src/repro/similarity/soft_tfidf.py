"""SoftTFIDF similarity (Cohen, Ravikumar & Fienberg, IIWeb 2003).

SoftTFIDF generalises TF-IDF cosine similarity by also crediting token pairs
that are merely *similar* (under a secondary character-based measure, by
default Jaro-Winkler) rather than identical:

    CLOSE(θ, S, T)  = tokens w ∈ S such that some v ∈ T has sim(w, v) > θ
    SoftTFIDF(S, T) = Σ_{w ∈ CLOSE} V(w, S) · V(N(w,T), T) · sim(w, N(w, T))

where ``V(w, S)`` is the normalised TF-IDF weight of ``w`` in ``S`` and
``N(w, T)`` is the most similar token of ``T``.  HumMer compares the fields
of seed duplicates with SoftTFIDF to build the attribute-correspondence
similarity matrix (paper §2.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.similarity.base import SimilarityMeasure
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.tfidf import TfIdfVectorizer

__all__ = ["SoftTfIdfSimilarity"]


class SoftTfIdfSimilarity(SimilarityMeasure):
    """SoftTFIDF with a pluggable secondary measure.

    Args:
        corpus: documents used to fit IDF weights.  When omitted, weights are
            fitted lazily on each compared pair (TF-only behaviour).
        secondary: character-level similarity for near-matching tokens.
        threshold: minimum secondary similarity for a token pair to count as
            "close" (0.9 in the original paper).
    """

    def __init__(
        self,
        corpus: Optional[Iterable[str]] = None,
        secondary: Callable[[str, str], float] = jaro_winkler_similarity,
        threshold: float = 0.9,
    ):
        self.vectorizer = TfIdfVectorizer()
        self.secondary = secondary
        self.threshold = threshold
        self._fitted = False
        if corpus is not None:
            self.fit(corpus)

    def fit(self, corpus: Iterable[str]) -> "SoftTfIdfSimilarity":
        """Fit IDF weights on *corpus*."""
        self.vectorizer.fit(corpus)
        self._fitted = True
        return self

    def compare(self, left: str, right: str) -> float:
        if not self._fitted:
            self.vectorizer.fit([left, right])
        left_vector = self.vectorizer.transform(left)
        right_vector = self.vectorizer.transform(right)
        if not left_vector or not right_vector:
            return 1.0 if not left_vector and not right_vector else 0.0

        score = self._directed(left_vector, right_vector)
        # SoftTFIDF is asymmetric in CLOSE(); use the max of both directions so
        # compare(a, b) == compare(b, a), which the matching matrix relies on.
        return min(1.0, max(score, self._directed(right_vector, left_vector)))

    def _directed(self, source: Dict[str, float], target: Dict[str, float]) -> float:
        total = 0.0
        for token, source_weight in source.items():
            if token in target:
                best_token, best_similarity = token, 1.0
            else:
                best_token, best_similarity = None, 0.0
                for candidate in target:
                    similarity = self.secondary(token, candidate)
                    if similarity > best_similarity:
                        best_token, best_similarity = candidate, similarity
            if best_token is not None and best_similarity > self.threshold:
                total += source_weight * target[best_token] * best_similarity
        return total
