"""SoftTFIDF similarity (Cohen, Ravikumar & Fienberg, IIWeb 2003).

SoftTFIDF generalises TF-IDF cosine similarity by also crediting token pairs
that are merely *similar* (under a secondary character-based measure, by
default Jaro-Winkler) rather than identical:

    CLOSE(θ, S, T)  = tokens w ∈ S such that some v ∈ T has sim(w, v) > θ
    SoftTFIDF(S, T) = Σ_{w ∈ CLOSE} V(w, S) · V(N(w,T), T) · sim(w, N(w, T))

where ``V(w, S)`` is the normalised TF-IDF weight of ``w`` in ``S`` and
``N(w, T)`` is the most similar token of ``T``.  HumMer compares the fields
of seed duplicates with SoftTFIDF to build the attribute-correspondence
similarity matrix (paper §2.2).

The secondary measure dominates the cost of a comparison: ``_directed`` makes
O(|S|·|T|) Jaro-Winkler calls per field pair, and DUMAS compares the same
attribute values across every seed's field matrix.  A bounded token-pair
cache memoises those calls — the secondary measure is a pure function of the
two tokens, so caching can change runtimes but never scores.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.similarity.base import SimilarityMeasure
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.tfidf import TfIdfVectorizer

__all__ = ["SoftTfIdfSimilarity"]

#: Default bound on the memoised (token, token) secondary-similarity pairs.
DEFAULT_SECONDARY_CACHE_SIZE = 65536


class SoftTfIdfSimilarity(SimilarityMeasure):
    """SoftTFIDF with a pluggable secondary measure.

    Args:
        corpus: documents used to fit IDF weights.  When omitted, weights are
            fitted lazily on each compared pair (TF-only behaviour) using a
            local throwaway vectorizer, so a shared unfitted instance is safe
            to reuse (and parallelise) — ``compare`` never mutates ``self``.
        secondary: character-level similarity for near-matching tokens.
        threshold: minimum secondary similarity for a token pair to count as
            "close" (0.9 in the original paper).
        secondary_cache_size: bound on the number of memoised token pairs for
            the secondary measure (0 disables caching).  Eviction is FIFO;
            the cache is transparent — it never changes a score.
    """

    def __init__(
        self,
        corpus: Optional[Iterable[str]] = None,
        secondary: Callable[[str, str], float] = jaro_winkler_similarity,
        threshold: float = 0.9,
        secondary_cache_size: int = DEFAULT_SECONDARY_CACHE_SIZE,
    ):
        self.vectorizer = TfIdfVectorizer()
        self.secondary = secondary
        self.threshold = threshold
        self.secondary_cache_size = secondary_cache_size
        self._secondary_cache: Dict[Tuple[str, str], float] = {}
        self._fitted = False
        if corpus is not None:
            self.fit(corpus)

    def fit(self, corpus: Iterable[str]) -> "SoftTfIdfSimilarity":
        """Fit IDF weights on *corpus*."""
        self.vectorizer.fit(corpus)
        self._fitted = True
        return self

    def fit_counts(
        self, document_frequency: Mapping[str, int], document_count: int
    ) -> "SoftTfIdfSimilarity":
        """Fit IDF weights from precomputed document-frequency statistics.

        Bit-identical to :meth:`fit` on the corpus the counts describe (see
        :meth:`TfIdfVectorizer.fit_counts`); this is how the prepared-source
        layer reconstructs the cross-relation field corpus without re-reading
        a single cell value.
        """
        self.vectorizer.fit_counts(document_frequency, document_count)
        self._fitted = True
        return self

    def compare(self, left: str, right: str) -> float:
        vectorizer = self.vectorizer
        if not self._fitted:
            # Local throwaway fit: refitting the shared vectorizer per pair
            # would leave a reused instance dependent on comparison order.
            vectorizer = TfIdfVectorizer(tokenizer=self.vectorizer.tokenizer)
            vectorizer.fit([left, right])
        left_vector = vectorizer.transform(left)
        right_vector = vectorizer.transform(right)
        if not left_vector or not right_vector:
            return 1.0 if not left_vector and not right_vector else 0.0

        score = self._directed(left_vector, right_vector)
        # SoftTFIDF is asymmetric in CLOSE(); use the max of both directions so
        # compare(a, b) == compare(b, a), which the matching matrix relies on.
        return min(1.0, max(score, self._directed(right_vector, left_vector)))

    def compare_batch(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        """Batch kernel: vectorise each distinct value and score each distinct pair once.

        The ``_directed`` pass makes O(|S|·|T|) secondary-measure calls per
        pair, and candidate batches repeat both values and whole pairs, so
        the kernel (a) transforms each distinct value once under the fitted
        model and (b) runs the directed passes once per distinct (left,
        right) pair.  Both are transparent — the score is a pure function of
        the two vectors — so results are bit-identical to the per-pair loop.
        Unfitted instances dedupe distinct pairs only (the throwaway fit is
        itself pair-local).
        """
        if len(left_values) != len(right_values):
            raise ValueError(
                f"batch sides differ in length: {len(left_values)} vs {len(right_values)}"
            )
        if not self._fitted:
            return self._compare_batch_deduped(left_values, right_values)
        transform = self.vectorizer.transform
        vectors: Dict[str, Dict[str, float]] = {}

        def vector(value: str) -> Dict[str, float]:
            cached = vectors.get(value)
            if cached is None:
                cached = transform(value)
                vectors[value] = cached
            return cached

        pair_scores: Dict[Tuple[str, str], float] = {}
        scores: List[float] = []
        for left, right in zip(left_values, right_values):
            key = (left, right)
            score = pair_scores.get(key)
            if score is None:
                left_vector = vector(left)
                right_vector = vector(right)
                if not left_vector or not right_vector:
                    score = 1.0 if not left_vector and not right_vector else 0.0
                else:
                    score = min(
                        1.0,
                        max(
                            self._directed(left_vector, right_vector),
                            self._directed(right_vector, left_vector),
                        ),
                    )
                pair_scores[key] = score
            scores.append(score)
        return scores

    def _secondary_similarity(self, left_token: str, right_token: str) -> float:
        """The secondary measure, memoised under the bounded FIFO cache."""
        if self.secondary_cache_size <= 0:
            return self.secondary(left_token, right_token)
        key = (left_token, right_token)
        cache = self._secondary_cache
        cached = cache.get(key)
        if cached is None:
            cached = self.secondary(left_token, right_token)
            if len(cache) >= self.secondary_cache_size:
                # FIFO eviction: dicts iterate in insertion order, so the
                # first key is the oldest entry.
                cache.pop(next(iter(cache)))
            cache[key] = cached
        return cached

    def _directed(self, source: Dict[str, float], target: Dict[str, float]) -> float:
        total = 0.0
        for token, source_weight in source.items():
            if token in target:
                best_token, best_similarity = token, 1.0
            else:
                best_token, best_similarity = None, 0.0
                for candidate in target:
                    similarity = self._secondary_similarity(token, candidate)
                    if similarity > best_similarity:
                        best_token, best_similarity = candidate, similarity
            if best_token is not None and best_similarity > self.threshold:
                total += source_weight * target[best_token] * best_similarity
        return total
