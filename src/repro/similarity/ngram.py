"""Character n-gram similarity."""

from __future__ import annotations

from collections import Counter

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import qgrams

__all__ = ["ngram_similarity", "NgramSimilarity"]


def ngram_similarity(left: str, right: str, size: int = 3) -> float:
    """Dice coefficient over padded character q-grams, in ``[0, 1]``."""
    left_grams = Counter(qgrams(left, size=size))
    right_grams = Counter(qgrams(right, size=size))
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    overlap = sum((left_grams & right_grams).values())
    total = sum(left_grams.values()) + sum(right_grams.values())
    return 2.0 * overlap / total


class NgramSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`ngram_similarity`."""

    def __init__(self, size: int = 3):
        self.size = size

    def compare(self, left: str, right: str) -> float:
        return ngram_similarity(left, right, size=self.size)
