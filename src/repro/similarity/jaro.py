"""Jaro and Jaro-Winkler similarity.

Jaro-Winkler is the secondary (within-token) measure of SoftTFIDF as defined
by Cohen, Ravikumar & Fienberg (2003), which HumMer uses for field-wise
comparison of duplicate tuples during schema matching.
"""

from __future__ import annotations

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import normalize_text

__all__ = ["jaro_similarity", "jaro_winkler_similarity", "JaroWinklerSimilarity"]


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity of two strings, in ``[0, 1]``."""
    left = "" if left is None else str(left)
    right = "" if right is None else str(right)
    if left == right:
        return 1.0
    len_left, len_right = len(left), len(right)
    if len_left == 0 or len_right == 0:
        return 0.0
    match_window = max(len_left, len_right) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len_left
    right_matched = [False] * len_right
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_right)
        for j in range(start, end):
            if right_matched[j] or right[j] != char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_left):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len_left + matches / len_right + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the length of the common prefix."""
    base = jaro_similarity(left, right)
    left = "" if left is None else str(left)
    right = "" if right is None else str(right)
    prefix = 0
    for l_char, r_char in zip(left[:max_prefix], right[:max_prefix]):
        if l_char != r_char:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


class JaroWinklerSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`jaro_winkler_similarity` with text normalisation."""

    def __init__(self, prefix_scale: float = 0.1, normalize: bool = True):
        self.prefix_scale = prefix_scale
        self.normalize = normalize

    def compare(self, left: str, right: str) -> float:
        if self.normalize:
            left = normalize_text(left)
            right = normalize_text(right)
        return jaro_winkler_similarity(left, right, prefix_scale=self.prefix_scale)

    def compare_batch(self, left_values, right_values):
        # Character alignment is the cost; dedupe repeated (value, value)
        # pairs across the batch.
        return self._compare_batch_deduped(left_values, right_values)
