"""Similarity measure interfaces."""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

__all__ = ["SimilarityMeasure", "TokenSimilarity"]


class SimilarityMeasure(abc.ABC):
    """A normalised similarity between two strings: ``compare(a, b) ∈ [0, 1]``."""

    @abc.abstractmethod
    def compare(self, left: str, right: str) -> float:
        """Return the similarity of the two strings (1 = identical)."""

    def compare_batch(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        """Score aligned value sequences pairwise: ``result[i] = compare(l[i], r[i])``.

        The default implementation loops over :meth:`compare`, so every
        measure supports batching out of the box.  Measures with exploitable
        batch structure override this with a vectorised kernel — the contract
        is that the returned floats are **bit-identical** to the per-pair
        loop (kernels may reorder *work*, e.g. dedupe repeated pairs or
        pre-tokenise shared values, but never the per-pair arithmetic).
        """
        if len(left_values) != len(right_values):
            raise ValueError(
                f"batch sides differ in length: {len(left_values)} vs {len(right_values)}"
            )
        compare = self.compare
        return [compare(left, right) for left, right in zip(left_values, right_values)]

    def _compare_batch_deduped(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        """Batch kernel for measures that are pure functions of the value pair.

        Real candidate batches repeat cell pairs heavily (blocking groups
        similar tuples, columns repeat values), so scoring each *distinct*
        ``(left, right)`` pair once and fanning the result back out skips most
        of the work.  Scores are bit-identical to the per-pair loop because
        ``compare`` is deterministic in its arguments.
        """
        if len(left_values) != len(right_values):
            raise ValueError(
                f"batch sides differ in length: {len(left_values)} vs {len(right_values)}"
            )
        compare = self.compare
        cache: Dict[Tuple[str, str], float] = {}
        scores: List[float] = []
        for left, right in zip(left_values, right_values):
            key = (left, right)
            score = cache.get(key)
            if score is None:
                score = compare(left, right)
                cache[key] = score
            scores.append(score)
        return scores

    def __call__(self, left: str, right: str) -> float:
        return self.compare(left, right)


class TokenSimilarity(abc.ABC):
    """A normalised similarity between two token sequences."""

    @abc.abstractmethod
    def compare_tokens(self, left: Sequence[str], right: Sequence[str]) -> float:
        """Return the similarity of the two token sequences (1 = identical)."""
