"""Similarity measure interfaces."""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = ["SimilarityMeasure", "TokenSimilarity"]


class SimilarityMeasure(abc.ABC):
    """A normalised similarity between two strings: ``compare(a, b) ∈ [0, 1]``."""

    @abc.abstractmethod
    def compare(self, left: str, right: str) -> float:
        """Return the similarity of the two strings (1 = identical)."""

    def __call__(self, left: str, right: str) -> float:
        return self.compare(left, right)


class TokenSimilarity(abc.ABC):
    """A normalised similarity between two token sequences."""

    @abc.abstractmethod
    def compare_tokens(self, left: Sequence[str], right: Sequence[str]) -> float:
        """Return the similarity of the two token sequences (1 = identical)."""
