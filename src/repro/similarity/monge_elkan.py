"""Monge-Elkan hybrid token similarity.

For every token of the left string, take its best match among the right
string's tokens under a secondary character-level measure, then average.
Useful for multi-word fields (addresses, titles) where word order varies.
"""

from __future__ import annotations

from typing import Optional

from repro.similarity.base import SimilarityMeasure
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.tokenize import tokenize

__all__ = ["monge_elkan_similarity", "MongeElkanSimilarity"]


def monge_elkan_similarity(left: str, right: str, secondary=None, symmetric: bool = True) -> float:
    """Monge-Elkan similarity with Jaro-Winkler as the default secondary measure."""
    secondary = secondary or jaro_winkler_similarity
    left_tokens = tokenize(left)
    right_tokens = tokenize(right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0

    def directed(source, target):
        total = 0.0
        for token in source:
            total += max(secondary(token, other) for other in target)
        return total / len(source)

    forward = directed(left_tokens, right_tokens)
    if not symmetric:
        return forward
    backward = directed(right_tokens, left_tokens)
    return (forward + backward) / 2.0


class MongeElkanSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`monge_elkan_similarity`."""

    def __init__(self, secondary: Optional[SimilarityMeasure] = None, symmetric: bool = True):
        self.secondary = secondary
        self.symmetric = symmetric

    def compare(self, left: str, right: str) -> float:
        secondary = self.secondary.compare if self.secondary is not None else None
        return monge_elkan_similarity(left, right, secondary=secondary, symmetric=self.symmetric)
