"""Tokenisation helpers shared by the similarity measures."""

from __future__ import annotations

import re
import unicodedata
from typing import List

__all__ = ["normalize_text", "tokenize", "qgrams"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def normalize_text(text: str) -> str:
    """Lower-case, strip accents and collapse whitespace."""
    if text is None:
        return ""
    decomposed = unicodedata.normalize("NFKD", str(text))
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return re.sub(r"\s+", " ", stripped.lower()).strip()


def tokenize(text: str) -> List[str]:
    """Split *text* into lower-case alphanumeric word tokens."""
    return _TOKEN_RE.findall(normalize_text(text))


def qgrams(text: str, size: int = 3, pad: bool = True) -> List[str]:
    """Character q-grams of *text* (padded with ``#`` so short strings still produce grams)."""
    normalized = normalize_text(text)
    if not normalized:
        return []
    if pad:
        padding = "#" * (size - 1)
        normalized = f"{padding}{normalized}{padding}"
    if len(normalized) < size:
        return [normalized]
    return [normalized[i : i + size] for i in range(len(normalized) - size + 1)]
