"""Levenshtein (edit) distance and the derived normalised similarity.

The duplicate-detection similarity measure uses edit distance for textual
attribute values (paper §2.3, "data similarity between matched attributes
using edit distance and numerical distance functions").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import normalize_text

__all__ = ["levenshtein_distance", "levenshtein_similarity", "LevenshteinSimilarity"]


def levenshtein_distance(left: str, right: str) -> int:
    """Minimum number of single-character edits turning *left* into *right*.

    Classic two-row dynamic program, O(len(left) * len(right)).
    """
    left = "" if left is None else str(left)
    right = "" if right is None else str(right)
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str, normalize: bool = True) -> float:
    """Edit distance scaled to ``[0, 1]``: ``1 - distance / max(len)``.

    With *normalize* the strings are case-folded and accent-stripped first.
    """
    if normalize:
        left = normalize_text(left)
        right = normalize_text(right)
    else:
        left = "" if left is None else str(left)
        right = "" if right is None else str(right)
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left, right) / longest


class LevenshteinSimilarity(SimilarityMeasure):
    """Object wrapper around :func:`levenshtein_similarity`."""

    def __init__(self, normalize: bool = True):
        self.normalize = normalize

    def compare(self, left: str, right: str) -> float:
        return levenshtein_similarity(left, right, normalize=self.normalize)

    def compare_batch(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        # The O(|l|·|r|) dynamic program dominates; candidate batches repeat
        # cell pairs heavily, so score each distinct pair once.
        return self._compare_batch_deduped(left_values, right_values)
