"""TF-IDF vectorisation and cosine similarity.

DUMAS treats each tuple as one string and ranks tuple pairs of the two
unaligned tables by TF-IDF cosine similarity; the top-ranked pairs are the
seed duplicates used for schema matching (paper §2.2).

The implementation is a small, self-contained vector-space model: log-scaled
term frequency, smoothed inverse document frequency, L2-normalised vectors.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.similarity.base import SimilarityMeasure
from repro.similarity.tokenize import tokenize

__all__ = ["TfIdfVectorizer", "TfIdfSimilarity", "cosine_similarity"]


def cosine_similarity(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Cosine of two sparse vectors given as term → weight mappings."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(weight * right.get(term, 0.0) for term, weight in left.items())
    left_norm = math.sqrt(sum(weight * weight for weight in left.values()))
    right_norm = math.sqrt(sum(weight * weight for weight in right.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


class TfIdfVectorizer:
    """Fits IDF weights on a corpus of documents and turns text into sparse vectors."""

    def __init__(self, tokenizer=tokenize, smooth: bool = True):
        self.tokenizer = tokenizer
        self.smooth = smooth
        self._idf: Dict[str, float] = {}
        self._document_count = 0
        self._fitted = False

    @property
    def vocabulary(self) -> List[str]:
        """Terms seen during fitting."""
        return sorted(self._idf)

    @property
    def document_count(self) -> int:
        """Number of documents the vectoriser was fitted on."""
        return self._document_count

    def fit(self, documents: Iterable[str]) -> "TfIdfVectorizer":
        """Learn IDF weights from *documents*."""
        document_frequency: Counter = Counter()
        count = 0
        for document in documents:
            count += 1
            document_frequency.update(set(self.tokenizer(document)))
        return self.fit_counts(document_frequency, count)

    def fit_counts(
        self, document_frequency: Mapping[str, int], document_count: int
    ) -> "TfIdfVectorizer":
        """Learn IDF weights from precomputed document-frequency statistics.

        *document_frequency* maps each term to the number of documents
        containing it, over a corpus of *document_count* documents.  Fitting
        from counts is **bit-identical** to :meth:`fit` on the corpus the
        counts describe: :meth:`fit` itself reduces the corpus to exactly
        these statistics before weighting, and per-term IDF is a pure
        function of ``(frequency, document_count)``.  This is what lets the
        prepared-source layer store per-source counts and merge them (counts
        add, corpus sizes add) into the exact cross-source model a fresh fit
        over the concatenated corpora would produce.
        """
        self._document_count = document_count
        self._idf = {}
        for term, frequency in document_frequency.items():
            self._idf[term] = self.idf_weight(frequency, document_count, self.smooth)
        self._fitted = True
        return self

    @staticmethod
    def idf_weight(document_frequency: int, document_count: int, smooth: bool = True) -> float:
        """Inverse document frequency of a term."""
        if smooth:
            return math.log((1 + document_count) / (1 + document_frequency)) + 1.0
        if document_frequency == 0:
            return 0.0
        return math.log(document_count / document_frequency)

    def idf(self, term: str) -> float:
        """IDF of a term (unseen terms get the weight of a singleton term)."""
        if term in self._idf:
            return self._idf[term]
        return self.idf_weight(1, max(self._document_count, 1), self.smooth)

    def transform(self, document: str) -> Dict[str, float]:
        """Turn one document into an L2-normalised TF-IDF vector."""
        counts = Counter(self.tokenizer(document))
        if not counts:
            return {}
        vector = {
            term: (1.0 + math.log(frequency)) * self.idf(term)
            for term, frequency in counts.items()
        }
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm == 0.0:
            return {}
        return {term: weight / norm for term, weight in vector.items()}

    def fit_transform(self, documents: Sequence[str]) -> List[Dict[str, float]]:
        """Fit on *documents* and return their vectors."""
        self.fit(documents)
        return [self.transform(document) for document in documents]

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity of two documents under the fitted model."""
        return cosine_similarity(self.transform(left), self.transform(right))


class TfIdfSimilarity(SimilarityMeasure):
    """Similarity measure facade over a fitted :class:`TfIdfVectorizer`.

    When constructed without a corpus the measure fits itself lazily on the
    pair being compared, which degrades gracefully to plain TF cosine.
    """

    def __init__(self, corpus: Optional[Iterable[str]] = None):
        self.vectorizer = TfIdfVectorizer()
        if corpus is not None:
            self.vectorizer.fit(corpus)
            self._fitted = True
        else:
            self._fitted = False

    def compare(self, left: str, right: str) -> float:
        vectorizer = self.vectorizer
        if not self._fitted:
            # A local throwaway fit: mutating the shared vectorizer here would
            # make a reused (or concurrently used) instance order-dependent.
            vectorizer = TfIdfVectorizer(tokenizer=self.vectorizer.tokenizer)
            vectorizer.fit([left, right])
        return vectorizer.similarity(left, right)

    def compare_batch(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> List[float]:
        """Batch kernel: vectorise each distinct value once across the batch.

        Under a fitted model a document's vector depends only on the document,
        so the kernel transforms each distinct value once and takes cosines
        per pair — bit-identical to the per-pair loop.  Unfitted instances
        fall back to scoring each *distinct pair* once (the throwaway fit
        makes the score a pure function of the pair).
        """
        if len(left_values) != len(right_values):
            raise ValueError(
                f"batch sides differ in length: {len(left_values)} vs {len(right_values)}"
            )
        if not self._fitted:
            return self._compare_batch_deduped(left_values, right_values)
        transform = self.vectorizer.transform
        vectors: Dict[str, Dict[str, float]] = {}

        def vector(value: str) -> Dict[str, float]:
            cached = vectors.get(value)
            if cached is None:
                cached = transform(value)
                vectors[value] = cached
            return cached

        return [
            cosine_similarity(vector(left), vector(right))
            for left, right in zip(left_values, right_values)
        ]
