"""Numeric, date and generic value similarity.

The duplicate-detection measure compares matched attribute values with "edit
distance and numerical distance functions" (paper §2.3).  This module
provides the numeric and date distances, and :func:`value_similarity`, the
type-dispatching entry point the detector uses per cell pair.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Optional

from repro.engine.types import DataType, infer_type, is_null
from repro.similarity.levenshtein import levenshtein_similarity
from repro.similarity.monge_elkan import monge_elkan_similarity
from repro.similarity.tokenize import normalize_text

__all__ = ["numeric_similarity", "date_similarity", "value_similarity"]


def numeric_similarity(left: float, right: float, scale: Optional[float] = None) -> float:
    """Similarity of two numbers in ``[0, 1]``.

    Uses relative difference: ``1 - |a-b| / max(|a|, |b|)`` (clamped at 0),
    or, when *scale* is given, an exponential decay ``exp(-|a-b| / scale)``.
    Two zeros are identical.
    """
    if is_null(left) or is_null(right):
        return 0.0
    left_f, right_f = float(left), float(right)
    if left_f == right_f:
        return 1.0
    difference = abs(left_f - right_f)
    if scale is not None and scale > 0:
        return math.exp(-difference / scale)
    denominator = max(abs(left_f), abs(right_f))
    if denominator == 0.0:
        return 1.0
    return max(0.0, 1.0 - difference / denominator)


def date_similarity(left: Any, right: Any, horizon_days: float = 365.0) -> float:
    """Similarity of two dates: linear decay over *horizon_days*."""
    left_date = _as_date(left)
    right_date = _as_date(right)
    if left_date is None or right_date is None:
        return 0.0
    delta_days = abs((left_date - right_date).days)
    return max(0.0, 1.0 - delta_days / horizon_days)


def _as_date(value: Any) -> Optional[_dt.date]:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        from repro.engine.types import coerce, TypeCoercionError

        try:
            coerced = coerce(value, DataType.DATE)
        except TypeCoercionError:
            return None
        return coerced if not isinstance(coerced, _dt.datetime) else coerced.date()
    return None


def value_similarity(left: Any, right: Any) -> float:
    """Type-dispatching similarity of two cell values in ``[0, 1]``.

    * Two nulls → 1.0 (no evidence against), one null → 0.0 (callers that
      need "missing has no influence" semantics check for nulls first).
    * Numbers → :func:`numeric_similarity`.
    * Dates → :func:`date_similarity`.
    * Booleans → exact match.
    * Everything else → hybrid string similarity: max of normalised edit
      distance and Monge-Elkan (token-order tolerant).
    """
    left_null, right_null = is_null(left), is_null(right)
    if left_null and right_null:
        return 1.0
    if left_null or right_null:
        return 0.0

    left_type = infer_type(left)
    right_type = infer_type(right)

    if left_type.is_numeric and right_type.is_numeric:
        return numeric_similarity(float(left), float(right))
    if left_type is DataType.DATE and right_type is DataType.DATE:
        return date_similarity(left, right)
    if left_type is DataType.BOOLEAN and right_type is DataType.BOOLEAN:
        return 1.0 if str(left).lower() == str(right).lower() else 0.0

    left_text = normalize_text(left)
    right_text = normalize_text(right)
    if left_text == right_text:
        return 1.0
    edit = levenshtein_similarity(left_text, right_text, normalize=False)
    if " " in left_text or " " in right_text:
        hybrid = monge_elkan_similarity(left_text, right_text)
        return max(edit, hybrid)
    return edit
