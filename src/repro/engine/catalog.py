"""Metadata repository (source catalog).

The paper: *"A metadata repository stores all registered sources of data
under an alias.  Sources can include tables in a database, flat files, XML
files, web services, etc.  Since we assume relational data within the system,
the metadata repository additionally stores instructions to transform data
into its relational form."*

:class:`Catalog` is that repository.  A source is anything implementing
:class:`repro.engine.io.base.DataSource`; registration associates it with an
alias plus optional transformation instructions (a callable applied to the
relational form after loading).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.engine.io.base import DataSource
from repro.engine.io.inline import InlineSource
from repro.engine.relation import Relation
from repro.exceptions import CatalogError

__all__ = ["SourceEntry", "Catalog"]

Transformation = Callable[[Relation], Relation]


@dataclass
class SourceEntry:
    """One registered source: alias, the source object, and transformation steps."""

    alias: str
    source: DataSource
    transformations: List[Transformation] = field(default_factory=list)
    description: str = ""

    def load(self) -> Relation:
        """Load the relational form of the source and apply the transformations."""
        relation = self.source.load().renamed(self.alias)
        for transformation in self.transformations:
            relation = transformation(relation)
        return relation


class Catalog:
    """Registry of data sources addressable by alias.

    Loaded relations are cached; :meth:`invalidate` drops the cache for
    sources whose backing data changed.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, SourceEntry] = {}
        self._cache: Dict[str, Relation] = {}

    # -- registration -----------------------------------------------------------

    def register(
        self,
        alias: str,
        source: Union[DataSource, Relation, Iterable[dict]],
        transformations: Optional[Iterable[Transformation]] = None,
        description: str = "",
        replace: bool = False,
    ) -> SourceEntry:
        """Register *source* under *alias*.

        *source* may be a :class:`DataSource`, an already-built
        :class:`Relation`, or an iterable of dictionaries (convenience for
        tests and examples).
        """
        key = alias.lower()
        if key in self._entries and not replace:
            raise CatalogError(f"alias {alias!r} is already registered")
        if isinstance(source, Relation):
            source = InlineSource(source)
        elif not isinstance(source, DataSource):
            source = InlineSource(Relation.from_dicts(list(source), name=alias))
        entry = SourceEntry(alias, source, list(transformations or ()), description)
        self._entries[key] = entry
        self._cache.pop(key, None)
        return entry

    def unregister(self, alias: str) -> None:
        """Remove a registered source."""
        key = alias.lower()
        if key not in self._entries:
            raise CatalogError(f"alias {alias!r} is not registered")
        del self._entries[key]
        self._cache.pop(key, None)

    # -- lookup -------------------------------------------------------------------

    def aliases(self) -> List[str]:
        """All registered aliases, in registration order."""
        return [entry.alias for entry in self._entries.values()]

    def has(self, alias: str) -> bool:
        """Whether *alias* is registered."""
        return alias.lower() in self._entries

    def entry(self, alias: str) -> SourceEntry:
        """The :class:`SourceEntry` for *alias*."""
        try:
            return self._entries[alias.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown source alias {alias!r}; registered: {', '.join(self.aliases()) or '(none)'}"
            ) from None

    def fetch(self, alias: str) -> Relation:
        """Load (or return the cached) relational form of *alias*."""
        key = alias.lower()
        if key not in self._cache:
            self._cache[key] = self.entry(alias).load()
        return self._cache[key]

    def fetch_many(self, aliases: Iterable[str]) -> List[Relation]:
        """Load several aliases in order."""
        return [self.fetch(alias) for alias in aliases]

    def invalidate(self, alias: Optional[str] = None) -> None:
        """Drop the load cache for one alias (or all of them)."""
        if alias is None:
            self._cache.clear()
        else:
            self._cache.pop(alias.lower(), None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, alias: object) -> bool:
        return isinstance(alias, str) and self.has(alias)

    def __repr__(self) -> str:
        return f"<Catalog: {', '.join(self.aliases()) or 'empty'}>"
