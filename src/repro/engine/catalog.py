"""Metadata repository (source catalog).

The paper: *"A metadata repository stores all registered sources of data
under an alias.  Sources can include tables in a database, flat files, XML
files, web services, etc.  Since we assume relational data within the system,
the metadata repository additionally stores instructions to transform data
into its relational form."*

:class:`Catalog` is that repository.  A source is anything implementing
:class:`repro.engine.io.base.DataSource`; registration associates it with an
alias plus optional transformation instructions (a callable applied to the
relational form after loading).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.engine.io.base import DataSource
from repro.engine.io.inline import InlineSource
from repro.engine.relation import Relation
from repro.exceptions import CatalogError

__all__ = ["SourceEntry", "Catalog"]

Transformation = Callable[[Relation], Relation]


@dataclass
class SourceEntry:
    """One registered source: alias, the source object, and transformation steps."""

    alias: str
    source: DataSource
    transformations: List[Transformation] = field(default_factory=list)
    description: str = ""

    def load(self) -> Relation:
        """Load the relational form of the source and apply the transformations."""
        relation = self.source.load().renamed(self.alias)
        for transformation in self.transformations:
            relation = transformation(relation)
        return relation


class Catalog:
    """Registry of data sources addressable by alias.

    Loaded relations are cached; :meth:`invalidate` drops the cache for
    sources whose backing data changed.

    The catalog also owns the :class:`~repro.prepare.store.ArtifactStore`
    holding each source's prepared artifacts (token postings, seeding
    statistics, planner profiles — see :mod:`repro.prepare`).  Artifacts
    share the sources' lifecycle: they are invalidated whenever the source
    is replaced, unregistered or its load cache is dropped, and are rebuilt
    incrementally (only the changed sources) on the next prepare pass.

    Args:
        artifact_dir: optional directory for on-disk artifact persistence,
            so a freshly started process can serve its first query warm.
    """

    def __init__(self, artifact_dir: Optional[str] = None) -> None:
        # deferred import: repro.prepare consumes matching/dedup modules,
        # several of which import this module for type use
        from repro.prepare.store import ArtifactStore

        self._entries: Dict[str, SourceEntry] = {}
        self._cache: Dict[str, Relation] = {}
        self.artifacts = ArtifactStore(artifact_dir)

    # -- registration -----------------------------------------------------------

    def register(
        self,
        alias: str,
        source: Union[DataSource, Relation, Iterable[dict]],
        transformations: Optional[Iterable[Transformation]] = None,
        description: str = "",
        replace: bool = False,
    ) -> SourceEntry:
        """Register *source* under *alias*.

        *source* may be a :class:`DataSource`, an already-built
        :class:`Relation`, or an iterable of dictionaries (convenience for
        tests and examples).

        Re-registering with ``replace=True`` keeps the alias's original
        position in :meth:`aliases` (dict insertion order preserves the old
        slot): a replaced source is the *same* logical source with new data,
        so queries that enumerate the catalog see a stable order.  The alias
        spelling is updated to the new call's casing, and the load cache and
        all prepared artifacts of the alias are invalidated.
        """
        key = alias.lower()
        replacing = key in self._entries
        if replacing and not replace:
            raise CatalogError(f"alias {alias!r} is already registered")
        if isinstance(source, Relation):
            source = InlineSource(source)
        elif not isinstance(source, DataSource):
            source = InlineSource(Relation.from_dicts(list(source), name=alias))
        entry = SourceEntry(alias, source, list(transformations or ()), description)
        self._entries[key] = entry
        self._cache.pop(key, None)
        if replacing:
            # only replacement signals "data changed" — a first registration
            # (e.g. a fresh process bootstrapping the same catalog) keeps any
            # persisted artifacts, which digest validation vets on lookup
            self.artifacts.invalidate(key)
        return entry

    def unregister(self, alias: str) -> None:
        """Remove a registered source."""
        key = alias.lower()
        if key not in self._entries:
            raise CatalogError(f"alias {alias!r} is not registered")
        del self._entries[key]
        self._cache.pop(key, None)
        self.artifacts.invalidate(key)

    # -- lookup -------------------------------------------------------------------

    def aliases(self) -> List[str]:
        """All registered aliases, in first-registration order.

        The order is stable under ``register(replace=True)``: replacing a
        source updates its entry in place (including the alias spelling) but
        never moves it to the end — see :meth:`register`.
        """
        return [entry.alias for entry in self._entries.values()]

    def has(self, alias: str) -> bool:
        """Whether *alias* is registered."""
        return alias.lower() in self._entries

    def entry(self, alias: str) -> SourceEntry:
        """The :class:`SourceEntry` for *alias*."""
        try:
            return self._entries[alias.lower()]
        except KeyError:
            raise CatalogError(
                f"unknown source alias {alias!r}; registered: {', '.join(self.aliases()) or '(none)'}"
            ) from None

    def fetch(self, alias: str) -> Relation:
        """Load (or return the cached) relational form of *alias*."""
        key = alias.lower()
        if key not in self._cache:
            self._cache[key] = self.entry(alias).load()
        return self._cache[key]

    def fetch_many(self, aliases: Iterable[str]) -> List[Relation]:
        """Load several aliases in order."""
        return [self.fetch(alias) for alias in aliases]

    def invalidate(self, alias: Optional[str] = None) -> None:
        """Drop the load cache and prepared artifacts for one alias (or all).

        Call this when a source's backing data changed; the next
        :meth:`fetch` reloads, and the next prepare pass rebuilds only the
        invalidated artifacts (a reload that yields identical content would
        still rebuild — invalidation is an explicit "data changed" signal).
        """
        if alias is None:
            self._cache.clear()
            self.artifacts.invalidate()
        else:
            self._cache.pop(alias.lower(), None)
            self.artifacts.invalidate(alias)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, alias: object) -> bool:
        return isinstance(alias, str) and self.has(alias)

    def __repr__(self) -> str:
        return f"<Catalog: {', '.join(self.aliases()) or 'empty'}>"
