"""Standard SQL aggregate functions.

The paper notes that conflict resolution is "implemented as user defined
aggregation" and that the standard SQL aggregates (min, max, sum, ...) are
directly usable as resolution functions.  This module provides those
standard aggregates for the GROUP BY operator; the richer, context-aware
resolution functions live in :mod:`repro.core.resolution` and wrap these
where they overlap.
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Dict, List, Sequence

from repro.engine.types import is_null
from repro.exceptions import ExpressionError

__all__ = ["AGGREGATE_FUNCTIONS", "aggregate_function"]


def _non_null(values: Sequence[Any]) -> List[Any]:
    return [value for value in values if not is_null(value)]


def _agg_count(values: Sequence[Any]) -> int:
    return len(_non_null(values))


def _agg_count_all(values: Sequence[Any]) -> int:
    return len(values)


def _agg_sum(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    return sum(present)


def _agg_avg(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    return sum(present) / len(present)


def _agg_min(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    try:
        return min(present)
    except TypeError:
        return min(present, key=str)


def _agg_max(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    try:
        return max(present)
    except TypeError:
        return max(present, key=str)


def _agg_median(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    return statistics.median(present)


def _agg_stddev(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    return statistics.stdev(present)


def _agg_variance(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if len(present) < 2:
        return None
    return statistics.variance(present)


def _agg_count_distinct(values: Sequence[Any]) -> int:
    present = _non_null(values)
    seen = set()
    for value in present:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            seen.add(("num", float(value)))
        else:
            seen.add((type(value).__name__, str(value)))
    return len(seen)


#: Registry of standard aggregates: name → function(list of values) → value.
AGGREGATE_FUNCTIONS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "count": _agg_count,
    "count_all": _agg_count_all,
    "count_distinct": _agg_count_distinct,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "mean": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "median": _agg_median,
    "stddev": _agg_stddev,
    "variance": _agg_variance,
}


def aggregate_function(name: str) -> Callable[[Sequence[Any]], Any]:
    """Look up a standard aggregate by (case-insensitive) name.

    Raises:
        ExpressionError: if no aggregate with that name is registered.
    """
    try:
        return AGGREGATE_FUNCTIONS[name.lower()]
    except KeyError:
        raise ExpressionError(
            f"unknown aggregate function {name!r}; known: {', '.join(sorted(AGGREGATE_FUNCTIONS))}"
        ) from None
