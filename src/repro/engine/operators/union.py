"""Union and full outer union operators.

The **full outer union** is the operator FUSE FROM is defined by in the
paper: the schemata of the inputs are merged (matching columns by name after
schema matching has renamed them), and every input tuple is padded with nulls
for the columns it does not provide.
"""

from __future__ import annotations

from typing import List

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.exceptions import SchemaError

__all__ = ["Union", "OuterUnion"]


class Union(Operator):
    """UNION ALL of children with identical (name-compatible) schemata."""

    def __init__(self, *children: Operator):
        if len(children) < 1:
            raise SchemaError("Union needs at least one input")
        super().__init__(*children)

    def execute(self) -> Relation:
        relations = [child.execute() for child in self.children]
        first = relations[0]
        rows: List[tuple] = list(first.rows)
        for relation in relations[1:]:
            if len(relation.schema) != len(first.schema):
                raise SchemaError(
                    "UNION inputs must have the same number of columns: "
                    f"{len(first.schema)} vs {len(relation.schema)}"
                )
            positions = [
                relation.schema.position(column.name)
                if relation.schema.has_column(column.name)
                else index
                for index, column in enumerate(first.schema)
            ]
            for values in relation.rows:
                rows.append(tuple(values[p] for p in positions))
        return Relation(first.schema, rows, name="union")

    def describe(self) -> str:
        return f"Union({len(self.children)} inputs)"


class OuterUnion(Operator):
    """Full outer union: merge schemata by column name, pad missing cells with null."""

    def __init__(self, *children: Operator):
        if len(children) < 1:
            raise SchemaError("OuterUnion needs at least one input")
        super().__init__(*children)

    def execute(self) -> Relation:
        relations = [child.execute() for child in self.children]
        return outer_union(relations)

    def describe(self) -> str:
        return f"OuterUnion({len(self.children)} inputs)"


def outer_union(relations: List[Relation], name: str = "fused_input") -> Relation:
    """Full outer union of already-materialised relations.

    Exposed as a plain function because the data-transformation step of the
    pipeline calls it directly, outside any query plan.
    """
    if not relations:
        raise SchemaError("outer union of zero relations is undefined")
    merged_schema = Schema.union_all([relation.schema for relation in relations])
    rows: List[tuple] = []
    for relation in relations:
        source_positions = {
            column.name.lower(): index for index, column in enumerate(relation.schema)
        }
        layout = [source_positions.get(column.name.lower()) for column in merged_schema]
        for values in relation.rows:
            rows.append(tuple(None if p is None else values[p] for p in layout))
    return Relation(merged_schema, rows, name=name)
