"""Rename operator (attribute renaming after schema matching)."""

from __future__ import annotations

from typing import Dict

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation

__all__ = ["Rename"]


class Rename(Operator):
    """Rename columns of the child according to an old → new mapping.

    This is the operator the data-transformation step uses to align the
    non-preferred schema with the preferred one once correspondences are
    known.
    """

    def __init__(self, child: Operator, mapping: Dict[str, str], relation_name: str = ""):
        super().__init__(child)
        self.mapping = dict(mapping)
        self.relation_name = relation_name

    def execute(self) -> Relation:
        source = self.children[0].execute()
        result = source.rename_columns(self.mapping)
        if self.relation_name:
            result = result.renamed(self.relation_name)
        return result

    def describe(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping.items())
        return f"Rename({pairs})"
