"""Projection operator (with computed items and aliases)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.expressions import ColumnRef, Expression
from repro.engine.operators.base import Operator
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import infer_column_type

__all__ = ["ProjectItem", "Project"]


@dataclass
class ProjectItem:
    """One output column of a projection: an expression plus an output name."""

    expression: Expression
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return "expr"

    @classmethod
    def column(cls, name: str, alias: Optional[str] = None) -> "ProjectItem":
        """Convenience constructor for a plain column reference."""
        return cls(ColumnRef(name), alias)


class Project(Operator):
    """Evaluate a list of :class:`ProjectItem` per row."""

    def __init__(self, child: Operator, items: Sequence[ProjectItem]):
        super().__init__(child)
        self.items = list(items)

    def execute(self) -> Relation:
        source = self.children[0].execute()
        names = self._disambiguate([item.output_name for item in self.items])
        rows: List[tuple] = []
        for row in source:
            rows.append(tuple(item.expression.evaluate(row) for item in self.items))
        columns = []
        for position, name in enumerate(names):
            item = self.items[position]
            if isinstance(item.expression, ColumnRef) and source.schema.has_column(
                item.expression.name
            ):
                dtype = source.schema.column(item.expression.name).dtype
            else:
                dtype = infer_column_type(values[position] for values in rows)
            columns.append(Column(name, dtype))
        return Relation(Schema(columns), rows, name=source.name)

    @staticmethod
    def _disambiguate(names: Sequence[str]) -> List[str]:
        seen: dict = {}
        result = []
        for name in names:
            key = name.lower()
            if key in seen:
                seen[key] += 1
                result.append(f"{name}_{seen[key]}")
            else:
                seen[key] = 0
                result.append(name)
        return result

    def describe(self) -> str:
        return f"Project({', '.join(item.output_name for item in self.items)})"
