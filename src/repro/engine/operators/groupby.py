"""Grouping and aggregation operators.

``GroupBy`` implements SQL GROUP BY with standard aggregates; it is both a
query operator in its own right and the *baseline fusion strategy* against
which the Fuse By conflict-resolution operator is compared in experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.operators.aggregates import aggregate_function
from repro.engine.operators.base import Operator
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import infer_column_type, is_null

__all__ = ["AggregateSpec", "GroupBy", "Aggregate", "group_rows"]


@dataclass
class AggregateSpec:
    """One aggregated output column.

    Attributes:
        column: input column the aggregate consumes.
        function: either the name of a standard aggregate (``"max"``) or a
            callable taking the list of group values.
        alias: output column name; defaults to ``function_column``.
    """

    column: str
    function: Any
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        label = self.function if isinstance(self.function, str) else getattr(
            self.function, "__name__", "agg"
        )
        return f"{label}_{self.column}"

    def resolve(self) -> Callable[[Sequence[Any]], Any]:
        """Return the callable implementing the aggregate."""
        if callable(self.function):
            return self.function
        return aggregate_function(str(self.function))


def _group_key(values: tuple, positions: Sequence[int]) -> tuple:
    key = []
    for position in positions:
        value = values[position]
        if is_null(value):
            key.append(("null",))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            key.append(("num", float(value)))
        else:
            key.append((type(value).__name__, str(value)))
    return tuple(key)


def group_rows(relation: Relation, by: Sequence[str]) -> List[Tuple[tuple, List[tuple]]]:
    """Group the rows of *relation* by the columns in *by*.

    Returns a list of ``(key_values, rows)`` pairs in first-seen order, where
    ``key_values`` are the raw cell values of the grouping columns for the
    first row of the group.  Exposed as a function because the fusion
    operator in :mod:`repro.core.fusion` groups by ``objectID`` the same way.
    """
    positions = relation.schema.positions(by)
    order: List[tuple] = []
    groups: Dict[tuple, List[tuple]] = {}
    key_values: Dict[tuple, tuple] = {}
    for values in relation.rows:
        key = _group_key(values, positions)
        if key not in groups:
            groups[key] = []
            key_values[key] = tuple(values[p] for p in positions)
            order.append(key)
        groups[key].append(values)
    return [(key_values[key], groups[key]) for key in order]


class GroupBy(Operator):
    """SQL GROUP BY: one output row per group, grouping columns plus aggregates."""

    def __init__(
        self,
        child: Operator,
        by: Sequence[str],
        aggregates: Sequence[AggregateSpec] = (),
    ):
        super().__init__(child)
        self.by = list(by)
        self.aggregates = list(aggregates)

    def execute(self) -> Relation:
        source = self.children[0].execute()
        grouped = group_rows(source, self.by)
        agg_positions = [source.schema.position(spec.column) for spec in self.aggregates]
        agg_callables = [spec.resolve() for spec in self.aggregates]
        rows: List[tuple] = []
        for key_values, group in grouped:
            cells = list(key_values)
            for position, function in zip(agg_positions, agg_callables):
                cells.append(function([values[position] for values in group]))
            rows.append(tuple(cells))
        columns = [source.schema.column(name) for name in self.by]
        for index, spec in enumerate(self.aggregates):
            values = (row[len(self.by) + index] for row in rows)
            columns.append(Column(spec.output_name, infer_column_type(values)))
        return Relation(Schema(columns), rows, name=source.name)

    def describe(self) -> str:
        aggs = ", ".join(spec.output_name for spec in self.aggregates)
        return f"GroupBy(by={self.by}, aggregates=[{aggs}])"


class Aggregate(Operator):
    """Aggregation over the whole input (no grouping columns): one output row."""

    def __init__(self, child: Operator, aggregates: Sequence[AggregateSpec]):
        super().__init__(child)
        self.aggregates = list(aggregates)

    def execute(self) -> Relation:
        source = self.children[0].execute()
        cells = []
        for spec in self.aggregates:
            position = source.schema.position(spec.column)
            cells.append(spec.resolve()([values[position] for values in source.rows]))
        columns = [
            Column(spec.output_name, infer_column_type([cell]))
            for spec, cell in zip(self.aggregates, cells)
        ]
        return Relation(Schema(columns), [tuple(cells)], name=source.name)

    def describe(self) -> str:
        return f"Aggregate({', '.join(spec.output_name for spec in self.aggregates)})"
