"""Operator base classes."""

from __future__ import annotations

import abc
from typing import Iterator, List

from repro.engine.relation import Relation, Row
from repro.engine.schema import Schema

__all__ = ["Operator", "RelationSource"]


class Operator(abc.ABC):
    """A node of a physical query plan.

    Operators follow a simple materialising model: :meth:`execute` pulls the
    full result of the children and produces a new :class:`Relation`.  For the
    data volumes HumMer targets (ad-hoc fusion of in-memory tables) this is
    simpler and fast enough; the interface still allows row-streaming through
    :meth:`iterate` where useful.
    """

    #: Child operators, in order.  Leaf operators have no children.
    children: List["Operator"]

    def __init__(self, *children: "Operator"):
        self.children = list(children)

    @abc.abstractmethod
    def execute(self) -> Relation:
        """Materialise the operator's result."""

    def iterate(self) -> Iterator[Row]:
        """Iterate over result rows (default: materialise then iterate)."""
        return iter(self.execute())

    @property
    def output_schema(self) -> Schema:
        """Schema of the result (default: compute by executing; overridden where cheap)."""
        return self.execute().schema

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description of this node."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class RelationSource(Operator):
    """Leaf operator wrapping an already-materialised relation."""

    def __init__(self, relation: Relation):
        super().__init__()
        self.relation = relation

    def execute(self) -> Relation:
        return self.relation

    @property
    def output_schema(self) -> Schema:
        return self.relation.schema

    def describe(self) -> str:
        name = self.relation.name or "anonymous"
        return f"RelationSource({name}, {len(self.relation)} rows)"
