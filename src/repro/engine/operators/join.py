"""Cross product and (equi/theta) join operators."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.expressions import Expression
from repro.engine.operators.base import Operator
from repro.engine.relation import Relation, Row
from repro.engine.schema import Schema
from repro.engine.types import is_null

__all__ = ["CrossProduct", "Join"]


def _combined_schema(left: Schema, right: Schema, left_name: str, right_name: str) -> Schema:
    """Schema of a join result; clashing names are qualified with the relation name."""
    columns = list(left.columns)
    taken = {column.name.lower() for column in columns}
    for column in right.columns:
        name = column.name
        if name.lower() in taken:
            qualifier = right_name or "right"
            name = f"{qualifier}.{column.name}"
            if name.lower() in taken:
                suffix = 2
                while f"{name}_{suffix}".lower() in taken:
                    suffix += 1
                name = f"{name}_{suffix}"
        taken.add(name.lower())
        columns.append(column.renamed(name))
    return Schema(columns)


class CrossProduct(Operator):
    """Cartesian product of two children (plain FROM with several tables)."""

    def __init__(self, left: Operator, right: Operator):
        super().__init__(left, right)

    def execute(self) -> Relation:
        left = self.children[0].execute()
        right = self.children[1].execute()
        schema = _combined_schema(left.schema, right.schema, left.name, right.name)
        rows = [
            left_values + right_values
            for left_values in left.rows
            for right_values in right.rows
        ]
        name = f"{left.name}_x_{right.name}" if left.name and right.name else ""
        return Relation(schema, rows, name=name)

    def describe(self) -> str:
        return "CrossProduct"


class Join(Operator):
    """Join two children.

    Supports inner, left-outer and full-outer joins.  When *on* names a pair
    of columns an efficient hash join is used; otherwise the *predicate*
    expression is evaluated over the combined row (nested loops).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        on: Optional[Tuple[str, str]] = None,
        predicate: Optional[Expression] = None,
        how: str = "inner",
    ):
        super().__init__(left, right)
        if on is None and predicate is None:
            raise ValueError("Join needs either `on` columns or a `predicate`")
        if how not in ("inner", "left", "full"):
            raise ValueError(f"unsupported join type {how!r}")
        self.on = on
        self.predicate = predicate
        self.how = how

    def execute(self) -> Relation:
        left = self.children[0].execute()
        right = self.children[1].execute()
        schema = _combined_schema(left.schema, right.schema, left.name, right.name)
        if self.on is not None:
            rows, matched_right = self._hash_join(left, right)
        else:
            rows, matched_right = self._nested_loops(left, right, schema)
        if self.how == "full":
            left_width = len(left.schema)
            for index, right_values in enumerate(right.rows):
                if index not in matched_right:
                    rows.append((None,) * left_width + tuple(right_values))
        name = f"{left.name}_join_{right.name}" if left.name and right.name else ""
        return Relation(schema, rows, name=name)

    def _hash_join(self, left: Relation, right: Relation):
        left_key, right_key = self.on
        left_pos = left.schema.position(left_key)
        right_pos = right.schema.position(right_key)
        index: dict = {}
        for row_index, values in enumerate(right.rows):
            key = values[right_pos]
            if is_null(key):
                continue
            index.setdefault(self._hashable(key), []).append((row_index, values))
        rows: List[tuple] = []
        matched_right = set()
        right_width = len(right.schema)
        for left_values in left.rows:
            key = left_values[left_pos]
            matches = [] if is_null(key) else index.get(self._hashable(key), [])
            if matches:
                for row_index, right_values in matches:
                    matched_right.add(row_index)
                    rows.append(tuple(left_values) + tuple(right_values))
            elif self.how in ("left", "full"):
                rows.append(tuple(left_values) + (None,) * right_width)
        return rows, matched_right

    def _nested_loops(self, left: Relation, right: Relation, schema: Schema):
        rows: List[tuple] = []
        matched_right = set()
        right_width = len(right.schema)
        for left_values in left.rows:
            matched = False
            for row_index, right_values in enumerate(right.rows):
                combined = Row(schema, tuple(left_values) + tuple(right_values))
                if bool(self.predicate.evaluate(combined)):
                    matched = True
                    matched_right.add(row_index)
                    rows.append(combined.values)
            if not matched and self.how in ("left", "full"):
                rows.append(tuple(left_values) + (None,) * right_width)
        return rows, matched_right

    @staticmethod
    def _hashable(value):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return ("num", float(value))
        return (type(value).__name__, value)

    def describe(self) -> str:
        condition = f"on={self.on}" if self.on else f"predicate={self.predicate!r}"
        return f"Join({self.how}, {condition})"
