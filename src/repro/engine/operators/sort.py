"""Sorting operator (ORDER BY)."""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Sequence

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation
from repro.engine.types import compare_values

__all__ = ["SortKey", "Sort"]


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key: a column name plus direction."""

    column: str
    descending: bool = False


class Sort(Operator):
    """Sort rows by a sequence of :class:`SortKey` (stable, nulls first)."""

    def __init__(self, child: Operator, keys: Sequence[SortKey]):
        super().__init__(child)
        self.keys = list(keys)

    def execute(self) -> Relation:
        source = self.children[0].execute()
        positions = [(source.schema.position(key.column), key.descending) for key in self.keys]

        def compare(left: tuple, right: tuple) -> int:
            for position, descending in positions:
                outcome = compare_values(left[position], right[position])
                if outcome:
                    return -outcome if descending else outcome
            return 0

        ordered: List[tuple] = sorted(source.rows, key=functools.cmp_to_key(compare))
        return Relation(source.schema, ordered, name=source.name)

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.column} {'DESC' if key.descending else 'ASC'}" for key in self.keys
        )
        return f"Sort({keys})"
