"""Table scan over a catalog alias."""

from __future__ import annotations

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation

__all__ = ["Scan"]


class Scan(Operator):
    """Fetch a registered source from the catalog (the paper's "table fetch").

    The catalog is consulted lazily at execution time, so a plan can be built
    before all sources are registered.
    """

    def __init__(self, catalog, alias: str):
        super().__init__()
        self.catalog = catalog
        self.alias = alias

    def execute(self) -> Relation:
        return self.catalog.fetch(self.alias)

    def describe(self) -> str:
        return f"Scan({self.alias})"
