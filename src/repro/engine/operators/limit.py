"""LIMIT / OFFSET operator."""

from __future__ import annotations

from typing import Optional

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation

__all__ = ["Limit"]


class Limit(Operator):
    """Return at most *count* rows, after skipping *offset* rows."""

    def __init__(self, child: Operator, count: Optional[int], offset: int = 0):
        super().__init__(child)
        if count is not None and count < 0:
            raise ValueError("LIMIT count must be non-negative")
        if offset < 0:
            raise ValueError("OFFSET must be non-negative")
        self.count = count
        self.offset = offset

    def execute(self) -> Relation:
        source = self.children[0].execute()
        end = None if self.count is None else self.offset + self.count
        return Relation(source.schema, source.rows[self.offset:end], name=source.name)

    def describe(self) -> str:
        return f"Limit(count={self.count}, offset={self.offset})"
