"""Duplicate-row elimination (exact DISTINCT)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.operators.base import Operator
from repro.engine.relation import Relation
from repro.engine.types import is_null

__all__ = ["Distinct"]


def _row_key(values, positions) -> tuple:
    key = []
    for position in positions:
        value = values[position]
        if is_null(value):
            key.append(("null",))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            key.append(("num", float(value)))
        else:
            key.append((type(value).__name__, str(value)))
    return tuple(key)


class Distinct(Operator):
    """Remove exact duplicate rows (optionally considering only some columns).

    This is the *baseline* notion of "duplicate" — identical values — as
    opposed to the similarity-based duplicate detection in
    :mod:`repro.dedup`.  When *subset* is given, the first row of each group
    is kept.
    """

    def __init__(self, child: Operator, subset: Optional[Sequence[str]] = None):
        super().__init__(child)
        self.subset = list(subset) if subset else None

    def execute(self) -> Relation:
        source = self.children[0].execute()
        names = self.subset or list(source.schema.names)
        positions = source.schema.positions(names)
        seen = set()
        rows: List[tuple] = []
        for values in source.rows:
            key = _row_key(values, positions)
            if key in seen:
                continue
            seen.add(key)
            rows.append(values)
        return Relation(source.schema, rows, name=source.name)

    def describe(self) -> str:
        return f"Distinct(subset={self.subset})"
