"""Iterator-model relational operators (the XXL substitute).

Each operator is a small class with an ``execute()`` method returning a
:class:`~repro.engine.relation.Relation`.  Operators compose into trees; the
Fuse By planner builds such trees and the executor simply calls
``execute()`` on the root.

The operator set is the one the paper names for the underlying XXL engine:
"table fetches, joins, unions, and groupings", plus the usual selection,
projection, renaming, sorting, distinct and limit, and the **full outer
union** the FUSE FROM clause requires.
"""

from repro.engine.operators.base import Operator, RelationSource
from repro.engine.operators.scan import Scan
from repro.engine.operators.select import Select
from repro.engine.operators.project import Project, ProjectItem
from repro.engine.operators.rename import Rename
from repro.engine.operators.join import CrossProduct, Join
from repro.engine.operators.union import Union, OuterUnion
from repro.engine.operators.distinct import Distinct
from repro.engine.operators.sort import Sort, SortKey
from repro.engine.operators.limit import Limit
from repro.engine.operators.groupby import Aggregate, AggregateSpec, GroupBy
from repro.engine.operators.aggregates import AGGREGATE_FUNCTIONS, aggregate_function

__all__ = [
    "Operator",
    "RelationSource",
    "Scan",
    "Select",
    "Project",
    "ProjectItem",
    "Rename",
    "CrossProduct",
    "Join",
    "Union",
    "OuterUnion",
    "Distinct",
    "Sort",
    "SortKey",
    "Limit",
    "GroupBy",
    "Aggregate",
    "AggregateSpec",
    "AGGREGATE_FUNCTIONS",
    "aggregate_function",
]
