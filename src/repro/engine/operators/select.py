"""Selection (filter) operator."""

from __future__ import annotations

from repro.engine.expressions import Expression
from repro.engine.operators.base import Operator
from repro.engine.relation import Relation

__all__ = ["Select"]


class Select(Operator):
    """Keep only rows for which *predicate* evaluates to true.

    Follows SQL WHERE semantics: rows where the predicate is unknown
    (``None``) are dropped.
    """

    def __init__(self, child: Operator, predicate: Expression):
        super().__init__(child)
        self.predicate = predicate

    def execute(self) -> Relation:
        source = self.children[0].execute()
        rows = [row.values for row in source if bool(self.predicate.evaluate(row))]
        return Relation(source.schema, rows, name=source.name)

    def describe(self) -> str:
        return f"Select({self.predicate!r})"
