"""Data source interface."""

from __future__ import annotations

import abc

from repro.engine.relation import Relation

__all__ = ["DataSource"]


class DataSource(abc.ABC):
    """Something that can be turned into a relation.

    Implementations must be repeatable: :meth:`load` may be called more than
    once (the catalog caches, but cache invalidation re-loads).
    """

    @abc.abstractmethod
    def load(self) -> Relation:
        """Produce the relational form of the source."""

    def describe(self) -> str:
        """Human-readable description for catalog listings."""
        return type(self).__name__
