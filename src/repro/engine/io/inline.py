"""In-memory data source (already-relational data)."""

from __future__ import annotations

from repro.engine.io.base import DataSource
from repro.engine.relation import Relation

__all__ = ["InlineSource"]


class InlineSource(DataSource):
    """Wraps an existing :class:`Relation` so it can live in the catalog."""

    def __init__(self, relation: Relation):
        self._relation = relation

    def load(self) -> Relation:
        return self._relation

    def describe(self) -> str:
        return f"InlineSource({self._relation.name or 'anonymous'}, {len(self._relation)} rows)"
