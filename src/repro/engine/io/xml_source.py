"""Simple XML source (flat record elements).

The paper's duplicate-detection component originates from DogmatiX, which
works on XML; HumMer maps that method to the relational world.  This source
performs the corresponding data transformation: each child element of the
document root (or of ``record_path``) becomes a row, its sub-elements and
attributes become columns.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ElementTree
from typing import Optional, Union

from repro.engine.io.base import DataSource
from repro.engine.relation import Relation
from repro.exceptions import SourceError

__all__ = ["XmlSource"]


class XmlSource(DataSource):
    """Reads flat record-oriented XML into a relation."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        record_path: Optional[str] = None,
        name: str = "",
    ):
        self.path = os.fspath(path)
        self.record_path = record_path
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]

    def load(self) -> Relation:
        if not os.path.exists(self.path):
            raise SourceError(f"XML file not found: {self.path}")
        try:
            tree = ElementTree.parse(self.path)
        except (OSError, ElementTree.ParseError) as exc:
            raise SourceError(f"cannot parse XML file {self.path}: {exc}") from exc
        root = tree.getroot()
        elements = root.findall(self.record_path) if self.record_path else list(root)
        records = [self._element_to_record(element) for element in elements]
        return Relation.from_dicts(records, name=self.name)

    @staticmethod
    def _element_to_record(element: ElementTree.Element) -> dict:
        record = dict(element.attrib)
        for child in element:
            text = (child.text or "").strip()
            if len(child):  # nested element: flatten one level with dotted keys
                for grandchild in child:
                    grand_text = (grandchild.text or "").strip()
                    record[f"{child.tag}.{grandchild.tag}"] = grand_text or None
            else:
                record[child.tag] = text or None
        return record

    def describe(self) -> str:
        return f"XmlSource({self.path})"
