"""JSON document source (array of objects, or newline-delimited objects)."""

from __future__ import annotations

import json
import os
from typing import Optional, Union

from repro.engine.io.base import DataSource
from repro.engine.relation import Relation
from repro.exceptions import SourceError

__all__ = ["JsonSource", "write_json"]


class JsonSource(DataSource):
    """Reads a JSON file holding a list of flat objects (or NDJSON lines).

    Nested objects are flattened with dotted keys (``address.city``), which is
    how HumMer's transformation instructions turn hierarchical sources into
    relational form.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        records_key: Optional[str] = None,
        name: str = "",
    ):
        self.path = os.fspath(path)
        self.records_key = records_key
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]

    def load(self) -> Relation:
        if not os.path.exists(self.path):
            raise SourceError(f"JSON file not found: {self.path}")
        try:
            with open(self.path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SourceError(f"cannot read JSON file {self.path}: {exc}") from exc
        records = self._parse(text)
        flattened = [flatten_record(record) for record in records]
        return Relation.from_dicts(flattened, name=self.name)

    def _parse(self, text: str) -> list:
        text = text.strip()
        if not text:
            return []
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            # newline-delimited JSON
            try:
                return [json.loads(line) for line in text.splitlines() if line.strip()]
            except json.JSONDecodeError as exc:
                raise SourceError(f"{self.path} is not valid JSON or NDJSON: {exc}") from exc
        if isinstance(document, dict):
            if self.records_key is not None:
                document = document.get(self.records_key, [])
            else:
                # single object → single row
                document = [document]
        if not isinstance(document, list):
            raise SourceError(f"{self.path}: expected a JSON array of objects")
        return [record for record in document if isinstance(record, dict)]

    def describe(self) -> str:
        return f"JsonSource({self.path})"


def flatten_record(record: dict, prefix: str = "") -> dict:
    """Flatten nested dictionaries with dotted keys; lists become joined strings."""
    flat = {}
    for key, value in record.items():
        full_key = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_record(value, prefix=f"{full_key}."))
        elif isinstance(value, list):
            flat[full_key] = ", ".join(str(item) for item in value)
        else:
            flat[full_key] = value
    return flat


def write_json(relation: Relation, path: Union[str, os.PathLike]) -> None:
    """Write a relation to a JSON array-of-objects file."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(relation.to_dicts(), handle, indent=2, default=str)
