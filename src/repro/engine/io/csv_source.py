"""CSV flat-file source."""

from __future__ import annotations

import csv
import io
import os
from typing import Optional, Sequence, Union

from repro.engine.io.base import DataSource
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.exceptions import SourceError

__all__ = ["CsvSource", "relation_from_csv_text", "relation_to_csv_text", "write_csv"]


class CsvSource(DataSource):
    """Reads a delimited flat file into a relation.

    Values are loaded as strings and column types are then inferred from the
    data (``infer_types=True``, the default), matching how HumMer treats flat
    files: the metadata repository stores "instructions to transform data into
    its relational form", which here is the delimiter/quote configuration plus
    type inference.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        delimiter: str = ",",
        quotechar: str = '"',
        has_header: bool = True,
        column_names: Optional[Sequence[str]] = None,
        encoding: str = "utf-8",
        infer_types: bool = True,
        name: str = "",
    ):
        self.path = os.fspath(path)
        self.delimiter = delimiter
        self.quotechar = quotechar
        self.has_header = has_header
        self.column_names = list(column_names) if column_names else None
        self.encoding = encoding
        self.infer_types = infer_types
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]

    def load(self) -> Relation:
        if not os.path.exists(self.path):
            raise SourceError(f"CSV file not found: {self.path}")
        try:
            with open(self.path, newline="", encoding=self.encoding) as handle:
                reader = csv.reader(handle, delimiter=self.delimiter, quotechar=self.quotechar)
                rows = list(reader)
        except (OSError, csv.Error) as exc:
            raise SourceError(f"cannot read CSV file {self.path}: {exc}") from exc
        return _rows_to_relation(
            rows, self.has_header, self.column_names, self.infer_types, self.name
        )

    def describe(self) -> str:
        return f"CsvSource({self.path})"


def _rows_to_relation(
    rows: list,
    has_header: bool,
    column_names: Optional[Sequence[str]],
    infer_types: bool,
    name: str,
) -> Relation:
    if not rows:
        return Relation(Schema(column_names or ["column_1"]), [], name=name)
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    else:
        width = max(len(row) for row in rows)
        header = column_names or [f"column_{i + 1}" for i in range(width)]
        body = rows
    if column_names and has_header:
        header = list(column_names)
    width = len(header)
    records = []
    for row in body:
        padded = list(row) + [None] * (width - len(row))
        records.append(dict(zip(header, padded[:width])))
    relation = Relation.from_dicts(records, name=name, infer_types=infer_types)
    if infer_types:
        relation = relation.coerced()
    return relation


def relation_from_csv_text(
    text: str,
    name: str = "",
    delimiter: str = ",",
    quotechar: str = '"',
    has_header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    infer_types: bool = True,
) -> Relation:
    """Parse CSV *text* (already in memory) into a relation.

    The in-memory twin of :class:`CsvSource` — the service layer accepts
    inline CSV uploads and never touches the filesystem.
    """
    try:
        reader = csv.reader(io.StringIO(text), delimiter=delimiter, quotechar=quotechar)
        rows = list(reader)
    except csv.Error as exc:
        raise SourceError(f"cannot parse CSV text: {exc}") from exc
    return _rows_to_relation(rows, has_header, column_names, infer_types, name)


def relation_to_csv_text(relation: Relation, delimiter: str = ",") -> str:
    """Render a relation as CSV text (header row first, NULL as empty)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(relation.schema.names)
    for values in relation.rows:
        writer.writerow(["" if value is None else value for value in values])
    return buffer.getvalue()


def write_csv(relation: Relation, path: Union[str, os.PathLike], delimiter: str = ",") -> None:
    """Write a relation to a CSV file (used by examples and the CLI)."""
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as handle:
        handle.write(relation_to_csv_text(relation, delimiter=delimiter))
