"""Data source adapters: turn external data into relations.

The metadata repository (catalog) registers :class:`DataSource` objects; each
knows how to produce the relational form of some external data — CSV flat
files, JSON documents, simple XML files, or in-memory data.
"""

from repro.engine.io.base import DataSource
from repro.engine.io.inline import InlineSource
from repro.engine.io.csv_source import CsvSource, write_csv
from repro.engine.io.json_source import JsonSource, write_json
from repro.engine.io.xml_source import XmlSource

__all__ = [
    "DataSource",
    "InlineSource",
    "CsvSource",
    "JsonSource",
    "XmlSource",
    "write_csv",
    "write_json",
]
