"""Relational engine substrate (the XXL substitute).

The original HumMer runs on top of XXL, a Java library of database query
operators.  This package is the Python stand-in: an in-memory relational
model (:class:`Schema`, :class:`Relation`), an expression language, the
iterator-model operators the paper lists (table fetch, select, project, join,
union, **full outer union**, group/aggregate, sort, distinct, limit), the
metadata repository (:class:`Catalog`) and flat-file / JSON / XML source
adapters.
"""

from repro.engine.types import DataType, NULL, coerce, infer_column_type, infer_type, is_null
from repro.engine.schema import Column, Schema
from repro.engine.relation import Relation, Row
from repro.engine.catalog import Catalog, SourceEntry
from repro.engine.statistics import ColumnStatistics, RelationStatistics, profile_relation
from repro.engine.io import CsvSource, InlineSource, JsonSource, XmlSource, write_csv, write_json

__all__ = [
    "DataType",
    "NULL",
    "coerce",
    "infer_type",
    "infer_column_type",
    "is_null",
    "Column",
    "Schema",
    "Relation",
    "Row",
    "Catalog",
    "SourceEntry",
    "ColumnStatistics",
    "RelationStatistics",
    "profile_relation",
    "CsvSource",
    "InlineSource",
    "JsonSource",
    "XmlSource",
    "write_csv",
    "write_json",
]
