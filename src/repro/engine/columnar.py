"""Column-major storage backing :class:`~repro.engine.relation.Relation`.

The engine's hot paths — blocking-key extraction, TF-IDF fits, candidate
pair scoring, fusion grouping — are all *set-oriented*: they touch every
value of a few attributes, not every attribute of a few tuples.  Storing a
relation as a list of row tuples forces per-row Python dispatch onto each of
them.  :class:`ColumnStore` flips the layout: one values list per attribute
plus a (lazily built, cached) null mask, so set-oriented code fetches a whole
column once and loops over a flat list.

Design points:

* **Zero-copy sharing.**  Columns are held as :class:`ColumnData` objects
  (values list + cached null mask).  Relations are logically immutable, so
  derived relations (projections, renames, re-typings) share the same
  ``ColumnData`` instances — a projection allocates nothing per cell, and a
  null mask computed through one view is visible through every other.
* **Row views at the edge only.**  Nothing in this module materialises row
  tuples unless asked; :meth:`ColumnStore.row` and
  :meth:`ColumnStore.row_tuples` exist for the API edge (query operators,
  IO, service payloads) where callers genuinely need tuples.
* **Nulls.**  ``None`` and ``NaN`` are the engine nulls
  (:func:`repro.engine.types.is_null`); a column's mask is a ``bytes`` string
  (1 = null) built on first use and cached on the column, so scoring kernels
  test ``mask[i]`` instead of calling ``is_null`` per cell per pair.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchemaError

__all__ = ["ColumnData", "ColumnStore"]


def _is_null(value: Any) -> bool:
    # Local inline of repro.engine.types.is_null (import cycle: types has no
    # dependency on this module, but keeping the check local makes the mask
    # build a tight loop over two cheap tests).
    return value is None or (isinstance(value, float) and value != value)


class ColumnData:
    """One attribute's values plus its cached null mask.

    The values list is the canonical storage — cells are held exactly as
    constructed (no boxing, no sentinel encoding), so reads through a column
    are bit-identical to reads through a row tuple.  The null mask is a
    ``bytes`` string built on first access and cached; relations that share a
    ``ColumnData`` (projections, renames) share the cached mask too.
    """

    __slots__ = ("values", "_mask")

    def __init__(self, values: List[Any], mask: Optional[bytes] = None):
        self.values = values
        self._mask = mask

    @property
    def null_mask(self) -> bytes:
        """``bytes`` of 0/1 flags, 1 where the cell is null (built once).

        The length guard rebuilds a cached mask whose column has been grown
        or shrunk in place (against the immutability convention, but
        tolerated the same way :meth:`Relation.content_key` tolerates
        content mutation).  Flipping an existing cell between null and
        non-null in place is outside that tolerance — the cached mask keeps
        the construction-time flags.
        """
        if self._mask is None or len(self._mask) != len(self.values):
            self._mask = bytes(1 if _is_null(value) else 0 for value in self.values)
        return self._mask

    @property
    def null_count(self) -> int:
        """Number of null cells."""
        return sum(self.null_mask)

    def take(self, indices: Sequence[int]) -> "ColumnData":
        """A new column holding ``values[i]`` for each index, in order."""
        values = self.values
        if self._mask is None:
            return ColumnData([values[i] for i in indices])
        mask = self._mask
        return ColumnData(
            [values[i] for i in indices], bytes(mask[i] for i in indices)
        )

    def slice(self, selector: slice) -> "ColumnData":
        """A new column over a slice of this one (mask sliced alongside)."""
        mask = self._mask[selector] if self._mask is not None else None
        return ColumnData(self.values[selector], mask)

    def copied(self) -> "ColumnData":
        """An independent copy (values list duplicated, mask shared)."""
        return ColumnData(list(self.values), self._mask)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnData({len(self.values)} values)"

    # -- pickling (``__slots__`` classes need explicit state) -----------------

    def __getstate__(self):
        return (self.values, self._mask)

    def __setstate__(self, state):
        self.values, self._mask = state


class ColumnStore:
    """Column-major tuple storage: one :class:`ColumnData` per attribute.

    The store knows nothing about schemas or column names — positions are the
    only addressing scheme, exactly like the row tuples it replaces.  All
    derived-store constructors (:meth:`take`, :meth:`select`, …) share
    ``ColumnData`` objects wherever the derivation allows it.
    """

    __slots__ = ("_columns", "_row_count")

    def __init__(self, columns: Sequence[ColumnData], row_count: Optional[int] = None):
        self._columns: Tuple[ColumnData, ...] = tuple(columns)
        if row_count is None:
            row_count = len(self._columns[0].values) if self._columns else 0
        for column in self._columns:
            if len(column.values) != row_count:
                raise SchemaError(
                    f"column has {len(column.values)} values, expected {row_count}"
                )
        self._row_count = row_count

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rows(cls, width: int, rows: Iterable[Sequence[Any]]) -> "ColumnStore":
        """Transpose an iterable of row sequences into a store.

        Every row must have exactly *width* values.
        """
        stored: List[Tuple[Any, ...]] = []
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise SchemaError(
                    f"row {values!r} has {len(values)} values, expected {width}"
                )
            stored.append(values)
        if not stored:
            return cls([ColumnData([]) for _ in range(width)], 0)
        # zip(*rows) transposes at C speed — much faster than per-cell appends
        return cls([ColumnData(list(column)) for column in zip(*stored)], len(stored))

    @classmethod
    def from_lists(cls, columns: Sequence[List[Any]]) -> "ColumnStore":
        """Wrap plain value lists (adopted, not copied) as a store."""
        return cls([ColumnData(column) for column in columns])

    # -- basic accessors -------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of tuples.

        Read from the first column's live length (when there is one) so that
        callers who mutate column storage in place — against the immutability
        convention, but tolerated by :meth:`Relation.content_key` — observe
        the true row count rather than a stale construction-time snapshot.
        """
        if self._columns:
            return len(self._columns[0].values)
        return self._row_count

    @property
    def width(self) -> int:
        """Number of attributes."""
        return len(self._columns)

    @property
    def columns(self) -> Tuple[ColumnData, ...]:
        """The column objects, in schema order."""
        return self._columns

    def column(self, position: int) -> List[Any]:
        """The values list of one column — the internal list, zero-copy.

        Callers must treat the result as read-only; relations are logically
        immutable and derived relations share column storage.
        """
        return self._columns[position].values

    def column_data(self, position: int) -> ColumnData:
        """The :class:`ColumnData` (values + mask cache) of one column."""
        return self._columns[position]

    def null_mask(self, position: int) -> bytes:
        """The null mask of one column (1 = null), built once and cached."""
        return self._columns[position].null_mask

    def cell(self, row_index: int, position: int) -> Any:
        """One cell value."""
        return self._columns[position].values[row_index]

    def row(self, index: int) -> Tuple[Any, ...]:
        """One row, materialised as a tuple (supports negative indices)."""
        count = self.row_count
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(f"row index {index} out of range")
        return tuple(column.values[index] for column in self._columns)

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples (transposed at C speed)."""
        if not self._columns:
            return iter(() for _ in range(self._row_count))
        return zip(*(column.values for column in self._columns))

    def row_tuples(self) -> List[Tuple[Any, ...]]:
        """All rows as a list of tuples — the API-edge materialisation."""
        return list(self.iter_rows())

    # -- derivations (all sharing ColumnData where possible) -------------------

    def select(self, positions: Sequence[int]) -> "ColumnStore":
        """A store over the given columns, in order — zero-copy."""
        return ColumnStore(
            [self._columns[position] for position in positions], self._row_count
        )

    def take(self, indices: Sequence[int]) -> "ColumnStore":
        """A store holding the given rows, in order."""
        return ColumnStore(
            [column.take(indices) for column in self._columns], len(indices)
        )

    def slice(self, selector: slice) -> "ColumnStore":
        """A store over a row slice."""
        columns = [column.slice(selector) for column in self._columns]
        count = len(columns[0].values) if columns else len(range(*selector.indices(self._row_count)))
        return ColumnStore(columns, count)

    def replace_column(self, position: int, column: ColumnData) -> "ColumnStore":
        """A store with one column replaced (others shared)."""
        columns = list(self._columns)
        columns[position] = column
        return ColumnStore(columns, self._row_count)

    def insert_column(self, position: int, column: ColumnData) -> "ColumnStore":
        """A store with one column inserted (others shared)."""
        columns = list(self._columns)
        columns.insert(position, column)
        return ColumnStore(columns, self._row_count)

    def extended(self, rows: Iterable[Sequence[Any]]) -> "ColumnStore":
        """A store with extra rows appended (column lists copied, then extended)."""
        appended = ColumnStore.from_rows(len(self._columns), rows)
        columns = []
        for existing, extra in zip(self._columns, appended._columns):
            merged = list(existing.values)
            merged.extend(extra.values)
            columns.append(ColumnData(merged))
        return ColumnStore(columns, self.row_count + appended.row_count)

    def copied(self) -> "ColumnStore":
        """A store with independent column lists (deep enough for immutability)."""
        return ColumnStore([column.copied() for column in self._columns], self._row_count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnStore {len(self._columns)} columns x {self._row_count} rows>"
