"""Data types for the relational engine.

The engine is dynamically typed at the cell level (cells hold Python
objects), but every column carries a declared :class:`DataType` used for

* coercion when loading external data (CSV cells are strings),
* type inference when a source carries no schema,
* choosing comparison semantics (numeric distance vs. string similarity)
  downstream in duplicate detection and conflict resolution.

``None`` is the engine-wide null value and is a member of every type.
"""

from __future__ import annotations

import datetime as _dt
import enum
import math
import re
from typing import Any, Iterable, Optional

from repro.exceptions import TypeCoercionError

__all__ = [
    "DataType",
    "NULL",
    "is_null",
    "coerce",
    "infer_type",
    "infer_column_type",
    "values_equal",
    "compare_values",
]

#: Canonical null value used throughout the engine.
NULL = None


class DataType(enum.Enum):
    """Declared type of a column."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    DATE = "date"
    ANY = "any"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic and numeric distance."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """Whether values of this type are compared with string similarity."""
        return self in (DataType.STRING, DataType.ANY)


_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_DATE_FORMATS = (
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%d.%m.%Y",
    "%d/%m/%Y",
    "%m/%d/%Y",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
)
_TRUE_LITERALS = {"true", "t", "yes", "y", "1"}
_FALSE_LITERALS = {"false", "f", "no", "n", "0"}
_NULL_LITERALS = {"", "null", "none", "na", "n/a", "nan", "\\n"}


def is_null(value: Any) -> bool:
    """Return ``True`` if *value* is the engine null (``None`` or NaN)."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def _parse_date(text: str) -> Optional[_dt.date]:
    for fmt in _DATE_FORMATS:
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        if fmt.endswith("%H:%M:%S"):
            return parsed
        return parsed.date()
    return None


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce *value* to *dtype*, returning ``None`` for null-like inputs.

    Raises:
        TypeCoercionError: if the value cannot represent the target type.
    """
    if is_null(value):
        return NULL
    if isinstance(value, str) and value.strip().lower() in _NULL_LITERALS:
        return NULL

    if dtype is DataType.ANY:
        return value

    if dtype is DataType.STRING:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            raise TypeCoercionError(f"cannot coerce non-integral float {value!r} to INTEGER")
        if isinstance(value, str):
            text = value.strip().replace(",", "")
            if _INT_RE.match(text):
                return int(text)
            if _FLOAT_RE.match(text):
                as_float = float(text)
                if as_float.is_integer():
                    return int(as_float)
        raise TypeCoercionError(f"cannot coerce {value!r} to INTEGER")

    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            text = value.strip().replace(",", "")
            if _FLOAT_RE.match(text):
                return float(text)
            # currency-style prefixes ("$12.50", "EUR 9.99")
            stripped = re.sub(r"^[^\d+-]+", "", text)
            if _FLOAT_RE.match(stripped):
                return float(stripped)
        raise TypeCoercionError(f"cannot coerce {value!r} to FLOAT")

    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            text = value.strip().lower()
            if text in _TRUE_LITERALS:
                return True
            if text in _FALSE_LITERALS:
                return False
        raise TypeCoercionError(f"cannot coerce {value!r} to BOOLEAN")

    if dtype is DataType.DATE:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            parsed = _parse_date(value.strip())
            if parsed is not None:
                return parsed
        raise TypeCoercionError(f"cannot coerce {value!r} to DATE")

    raise TypeCoercionError(f"unsupported target type {dtype!r}")  # pragma: no cover


def infer_type(value: Any) -> DataType:
    """Infer the most specific :class:`DataType` that can hold *value*."""
    if is_null(value):
        return DataType.ANY
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, (_dt.date, _dt.datetime)):
        return DataType.DATE
    if isinstance(value, str):
        text = value.strip()
        if text.lower() in _NULL_LITERALS:
            return DataType.ANY
        if _INT_RE.match(text):
            return DataType.INTEGER
        if _FLOAT_RE.match(text):
            return DataType.FLOAT
        if text.lower() in _TRUE_LITERALS or text.lower() in _FALSE_LITERALS:
            return DataType.BOOLEAN
        if _parse_date(text) is not None:
            return DataType.DATE
        return DataType.STRING
    return DataType.ANY


#: Lattice used to merge per-value inferences into a column type.  Joining a
#: pair of distinct concrete types falls back to STRING (the universal
#: representation), except INTEGER ∨ FLOAT = FLOAT.
_JOIN = {
    frozenset({DataType.INTEGER, DataType.FLOAT}): DataType.FLOAT,
}


def _join_types(a: DataType, b: DataType) -> DataType:
    if a is b:
        return a
    if a is DataType.ANY:
        return b
    if b is DataType.ANY:
        return a
    return _JOIN.get(frozenset({a, b}), DataType.STRING)


def infer_column_type(values: Iterable[Any], sample_limit: int = 1000) -> DataType:
    """Infer a column type from a sample of its *values*.

    Nulls are ignored; an all-null column is typed :data:`DataType.ANY`.
    """
    result = DataType.ANY
    seen = 0
    for value in values:
        if is_null(value):
            continue
        result = _join_types(result, infer_type(value))
        seen += 1
        if seen >= sample_limit or result is DataType.STRING:
            break
    return result


def values_equal(left: Any, right: Any) -> bool:
    """SQL-flavoured equality: nulls never equal anything, numerics compare by value."""
    if is_null(left) or is_null(right):
        return False
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def compare_values(left: Any, right: Any) -> int:
    """Three-way comparison used by ORDER BY; nulls sort first.

    Returns -1, 0 or 1.  Incomparable values are ordered by their string
    representation so sorting never raises.
    """
    left_null, right_null = is_null(left), is_null(right)
    if left_null and right_null:
        return 0
    if left_null:
        return -1
    if right_null:
        return 1
    try:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    except TypeError:
        left_s, right_s = str(left), str(right)
        if left_s < right_s:
            return -1
        if left_s > right_s:
            return 1
        return 0
