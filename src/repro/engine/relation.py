"""In-memory relation (table) abstraction.

:class:`Relation` is the unit of data exchanged between every HumMer
component: the catalog produces relations from registered sources, the
schema-matching step renames their columns and outer-unions them, duplicate
detection appends an ``objectID`` column and conflict resolution collapses
each object cluster to one row.

The design follows the paper's XXL substrate: a relation is a schema plus a
set of tuples.  Storage is **column-major** (:mod:`repro.engine.columnar`):
one values list per attribute with a cached null mask, so the set-oriented
hot paths — blocking-key extraction, TF-IDF fits, batched pair scoring —
fetch whole columns zero-copy instead of paying per-row Python dispatch.
:class:`Row` is a lazy *view* over that storage, materialised only at the
API edge (query operators, CSV/JSON IO, service payloads).  Relations are
*logically* immutable — all mutating helpers return new relations, sharing
column storage wherever the derivation allows — which makes the pipeline
steps and the query operators freely composable.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.columnar import ColumnData, ColumnStore
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType, coerce, infer_column_type, is_null
from repro.exceptions import SchemaError

__all__ = ["Row", "Relation"]


class Row(Mapping[str, Any]):
    """A single tuple of a relation, addressable by position or column name.

    A row is either *materialised* (constructed from a values sequence) or a
    *lazy view* over a relation's column store, created by iteration and
    indexing on :class:`Relation`.  A view reads cells straight out of the
    columns and only builds its values tuple when something asks for it
    (:attr:`values`, hashing, ``replace``), which keeps row objects free on
    the paths that touch one or two cells.
    """

    __slots__ = ("_schema", "_values", "_store", "_index")

    def __init__(self, schema: Schema, values: Sequence[Any]):
        if len(values) != len(schema):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(schema)} columns"
            )
        self._schema = schema
        self._values = tuple(values)
        self._store = None
        self._index = -1

    @classmethod
    def view(cls, schema: Schema, store: ColumnStore, index: int) -> "Row":
        """A lazy row view over *store* — no cell is read until accessed."""
        row = object.__new__(cls)
        row._schema = schema
        row._values = None
        row._store = store
        row._index = index
        return row

    # Mapping protocol -------------------------------------------------------

    def __getitem__(self, key: Union[str, int]) -> Any:
        position = key if isinstance(key, int) else self._schema.position(key)
        if self._values is not None:
            return self._values[position]
        return self._store.columns[position].values[self._index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._schema)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values and self._schema == other._schema
        if isinstance(other, Mapping):
            # A row *is* a name→value mapping; compare as one so plain dicts
            # (and other Mapping implementations) with the same pairs are
            # equal from both sides — dict.__eq__ returns NotImplemented for
            # Row operands, so Python falls back to this reflected call.
            return dict(self) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        cells = ", ".join(f"{name}={value!r}" for name, value in self.items())
        return f"Row({cells})"

    # Convenience -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """Schema this row conforms to."""
        return self._schema

    @property
    def values(self) -> Tuple[Any, ...]:
        """Cell values in schema order (materialised on first access)."""
        if self._values is None:
            self._values = self._store.row(self._index)
        return self._values

    def get(self, key: str, default: Any = None) -> Any:
        if isinstance(key, str) and not self._schema.has_column(key):
            return default
        return self[key]

    def to_dict(self) -> Dict[str, Any]:
        """Plain ``dict`` of column name → value."""
        return dict(zip(self._schema.names, self.values))

    def replace(self, **updates: Any) -> "Row":
        """Return a copy of the row with some cells replaced (by column name)."""
        values = list(self.values)
        for name, value in updates.items():
            values[self._schema.position(name)] = value
        return Row(self._schema, values)


class Relation:
    """An in-memory table: a :class:`Schema` plus column-major tuple storage.

    Relations are logically immutable; helpers such as :meth:`rename` or
    :meth:`with_column` return new relations sharing column storage where
    possible.
    """

    def __init__(
        self,
        schema: Union[Schema, Sequence[Union[Column, str, Tuple[str, DataType]]]],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
        coerce_types: bool = False,
    ):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._name = name
        store = ColumnStore.from_rows(
            len(self._schema),
            (row.values if isinstance(row, Row) else row for row in rows),
        )
        if coerce_types:
            store = ColumnStore(
                [
                    ColumnData([coerce(value, column.dtype) for value in data.values])
                    for data, column in zip(store.columns, self._schema.columns)
                ],
                store.row_count,
            )
        self._store = store
        self._digest: Optional[str] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def _from_store(cls, schema: Schema, store: ColumnStore, name: str) -> "Relation":
        """Internal: wrap an existing store (shared, not copied)."""
        relation = cls.__new__(cls)
        relation._schema = schema
        relation._name = name
        relation._store = store
        relation._digest = None
        return relation

    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, Any]],
        schema: Optional[Schema] = None,
        name: str = "",
        infer_types: bool = True,
    ) -> "Relation":
        """Build a relation from dictionaries.

        When *schema* is omitted, the column order is first-seen key order and
        types are inferred from the data (unless *infer_types* is false).
        Missing keys become nulls.
        """
        materialized = list(records)
        if schema is None:
            names: List[str] = []
            seen = set()
            for record in materialized:
                for key in record:
                    if key.lower() not in seen:
                        seen.add(key.lower())
                        names.append(key)
            columns_by_name = {name_: [] for name_ in names}
            for record in materialized:
                lowered = {key.lower(): value for key, value in record.items()}
                for name_ in names:
                    columns_by_name[name_].append(lowered.get(name_.lower()))
            if infer_types:
                schema = Schema(
                    [Column(name_, infer_column_type(columns_by_name[name_])) for name_ in names]
                )
            else:
                schema = Schema(names)
            store = ColumnStore.from_lists([columns_by_name[name_] for name_ in names])
            return cls._from_store(schema, store, name)
        columns: List[List[Any]] = [[] for _ in schema]
        lowered_names = [column.name.lower() for column in schema]
        for record in materialized:
            lowered = {key.lower(): value for key, value in record.items()}
            for position, key in enumerate(lowered_names):
                columns[position].append(lowered.get(key))
        return cls._from_store(schema, ColumnStore.from_lists(columns), name)

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence[Any]], name: str = "", infer_types: bool = True
    ) -> "Relation":
        """Build a relation from a mapping of column name → list of values."""
        names = list(columns)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        if infer_types:
            schema = Schema([Column(n, infer_column_type(columns[n])) for n in names])
        else:
            schema = Schema(names)
        store = ColumnStore.from_lists([list(columns[n]) for n in names])
        return cls._from_store(schema, store, name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "") -> "Relation":
        """An empty relation with the given schema."""
        return cls(schema, [], name=name)

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return self._store.row_count

    def __iter__(self) -> Iterator[Row]:
        schema, store = self._schema, self._store
        for index in range(store.row_count):
            yield Row.view(schema, store, index)

    def __getitem__(self, index: Union[int, slice]) -> Union[Row, "Relation"]:
        if isinstance(index, slice):
            return Relation._from_store(self._schema, self._store.slice(index), self._name)
        if index < 0:
            index += self._store.row_count
        if not 0 <= index < self._store.row_count:
            raise IndexError(f"row index {index} out of range")
        return Row.view(self._schema, self._store, index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._schema == other._schema
            and self._store.row_count == other._store.row_count
            and all(
                left.values == right.values
                for left, right in zip(self._store.columns, other._store.columns)
            )
        )

    def __repr__(self) -> str:
        label = self._name or "relation"
        return f"<Relation {label}: {len(self._schema)} columns x {len(self)} rows>"

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def name(self) -> str:
        """Relation name (source alias or derived label)."""
        return self._name

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in order."""
        return self._schema.names

    @property
    def store(self) -> ColumnStore:
        """The backing :class:`ColumnStore` (read-only by convention)."""
        return self._store

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        """All rows as tuples — a fresh list, transposed from the columns.

        This is the API-edge materialisation (O(cells) per call); columnar
        consumers should prefer :meth:`column` / :meth:`columns` /
        :meth:`row_values`, which don't transpose the whole relation.
        """
        return self._store.row_tuples()

    def row(self, index: int) -> Row:
        """The *index*-th row (a lazy view)."""
        return Row.view(self._schema, self._store, index)

    def row_values(self, index: int) -> Tuple[Any, ...]:
        """The *index*-th row as a plain tuple (no :class:`Row` allocation)."""
        return self._store.row(index)

    def column(self, name: str) -> List[Any]:
        """All values of column *name*, in row order — zero-copy.

        The returned list is the relation's internal column storage (shared
        with derived relations); treat it as read-only.
        """
        return self._store.column(self._schema.position(name))

    def columns(self, names: Sequence[str]) -> List[List[Any]]:
        """The value lists of several columns, in the given order — zero-copy."""
        return [self._store.column(self._schema.position(name)) for name in names]

    def column_at(self, position: int) -> List[Any]:
        """The values of the column at *position* — zero-copy."""
        return self._store.column(position)

    def null_mask(self, name: str) -> bytes:
        """Null flags (1 = null) for column *name*, built once and cached."""
        return self._store.null_mask(self._schema.position(name))

    def cell(self, row_index: int, column: str) -> Any:
        """Single cell value."""
        return self._store.cell(row_index, self._schema.position(column))

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return self._store.row_count == 0

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All rows as plain dictionaries."""
        names = self._schema.names
        return [dict(zip(names, values)) for values in self._store.iter_rows()]

    # -- transformation helpers --------------------------------------------------

    def renamed(self, name: str) -> "Relation":
        """Same data under a different relation name."""
        return Relation._from_store(self._schema, self._store, name)

    def rename_columns(self, mapping: Dict[str, str]) -> "Relation":
        """Rename columns (old → new); data is shared, not copied."""
        return Relation._from_store(self._schema.rename(mapping), self._store, self._name)

    def with_column(
        self,
        column: Union[Column, str],
        values: Union[Sequence[Any], Callable[[Row], Any], Any] = None,
        position: Optional[int] = None,
    ) -> "Relation":
        """Return a relation with one extra column.

        *values* may be a sequence (one value per row), a callable applied to
        each :class:`Row`, or a single constant.  Existing columns are shared
        with this relation, not copied.
        """
        new_column = column if isinstance(column, Column) else Column(column)
        count = self._store.row_count
        if callable(values):
            computed = [values(row) for row in self]
        elif isinstance(values, (list, tuple)):
            if len(values) != count:
                raise SchemaError(
                    f"expected {count} values for new column, got {len(values)}"
                )
            computed = list(values)
        else:
            computed = [values] * count
        schema = self._schema.add(new_column, position)
        insert_at = len(self._schema) if position is None else position
        store = self._store.insert_column(insert_at, ColumnData(computed))
        return Relation._from_store(schema, store, self._name)

    def without_columns(self, names: Sequence[str]) -> "Relation":
        """Return a relation with the given columns removed."""
        keep = [c.name for c in self._schema if c.name.lower() not in {n.lower() for n in names}]
        return self.project(keep)

    def project(self, names: Sequence[str]) -> "Relation":
        """Return a relation restricted to the given columns, in order.

        Zero-copy: the projected relation shares the selected columns'
        storage with this one.
        """
        positions = self._schema.positions(names)
        schema = self._schema.project(names)
        return Relation._from_store(schema, self._store.select(positions), self._name)

    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Return a relation keeping only rows where *predicate* is true."""
        indices = [index for index, row in enumerate(self) if predicate(row)]
        return Relation._from_store(self._schema, self._store.take(indices), self._name)

    def map_column(self, name: str, transform: Callable[[Any], Any]) -> "Relation":
        """Return a relation with *transform* applied to every cell of a column."""
        position = self._schema.position(name)
        mapped = ColumnData([transform(value) for value in self._store.column(position)])
        return Relation._from_store(
            self._schema, self._store.replace_column(position, mapped), self._name
        )

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Return a relation with extra rows appended."""
        return Relation._from_store(
            self._schema, self._store.extended(rows), self._name
        )

    def sorted_by(self, names: Sequence[str], descending: bool = False) -> "Relation":
        """Rows sorted by the given columns (nulls first)."""
        from repro.engine.types import compare_values
        import functools

        positions = self._schema.positions(names)
        columns = [self._store.column(p) for p in positions]

        def compare(left: int, right: int) -> int:
            for column in columns:
                outcome = compare_values(column[left], column[right])
                if outcome:
                    return outcome
            return 0

        order = sorted(
            range(self._store.row_count),
            key=functools.cmp_to_key(compare),
            reverse=descending,
        )
        return Relation._from_store(self._schema, self._store.take(order), self._name)

    def head(self, count: int) -> "Relation":
        """First *count* rows."""
        return Relation._from_store(
            self._schema, self._store.slice(slice(None, count)), self._name
        )

    def copy(self) -> "Relation":
        """Independent copy (column lists duplicated; cells are shared refs)."""
        return Relation._from_store(self._schema, self._store.copied(), self._name)

    def coerced(self) -> "Relation":
        """Return a relation with every cell coerced to its declared column type."""
        return Relation(self._schema, self._store.iter_rows(), name=self._name, coerce_types=True)

    def retyped(self) -> "Relation":
        """Return a relation whose column types are re-inferred from the data."""
        columns = []
        for index, column in enumerate(self._schema.columns):
            values = self._store.column(index)
            columns.append(column.with_type(infer_column_type(values)))
        return Relation._from_store(Schema(columns), self._store, self._name)

    def content_key(self) -> Tuple[Any, ...]:
        """Hashable, equality-comparable key over column names and row values.

        Relations are *logically* immutable, so components may cache derived
        structures (e.g. blocking indexes) per relation.  Keying such caches
        on ``id(relation)`` breaks in two ways: a recycled object id can serve
        a stale entry, and an equal-content clone misses the cache.  This key
        captures what the relation *contains* instead — and because it is the
        content itself (not just a hash of it), dict lookups verify equality,
        so a hash collision can never serve another relation's cache entry.
        It is rebuilt on every call (O(cells)) precisely so callers that
        mutate column storage in place — against the immutability convention —
        still get fresh cache entries rather than stale ones.  Cells are keyed
        as ``(type, value)`` because Python's cross-type equality (``True == 1
        == 1.0``) would otherwise conflate relations whose *textual* cell
        forms — what tokenisation and the similarity measures see — differ.
        Unhashable cell values fall back to the columns' ``repr``.
        """
        key = (
            self._schema.names,
            tuple(
                tuple((type(value), value) for value in row)
                for row in self._store.iter_rows()
            ),
        )
        try:
            hash(key)
        except TypeError:
            return (self._schema.names, repr([c.values for c in self._store.columns]))
        return key

    def content_hash(self) -> int:
        """Order-sensitive hash of :meth:`content_key`."""
        return hash(self.content_key())

    def content_digest(self) -> str:
        """Stable hex digest of the relation's content (computed once, cached).

        Unlike :meth:`content_hash` (Python's salted ``hash``, which differs
        between processes), this digest is reproducible across runs, so it can
        key *persisted* derived structures — the prepared-source artifacts a
        catalog stores on disk and validates against the current data on every
        query.  The digest is folded **column-wise** over the columnar storage
        (one hash update per column rather than per row) and cached on the
        instance: relations are logically immutable, and every
        ``ArtifactStore`` lookup used to re-hash the full content from
        scratch.  Cells are folded as ``(type name, repr)``, matching the
        cross-type separation of :meth:`content_key`.
        """
        if self._digest is None:
            import hashlib

            hasher = hashlib.sha256()
            hasher.update(repr(self._schema.names).encode("utf-8"))
            hasher.update(
                f"columnar:{self._store.row_count}x{self._store.width}".encode("utf-8")
            )
            for column in self._store.columns:
                hasher.update(
                    repr(
                        tuple(
                            (type(value).__name__, repr(value))
                            for value in column.values
                        )
                    ).encode("utf-8")
                )
            self._digest = hasher.hexdigest()
        return self._digest

    # -- statistics ---------------------------------------------------------------

    def null_count(self, name: str) -> int:
        """Number of null cells in a column (from the cached null mask)."""
        return self._store.column_data(self._schema.position(name)).null_count

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct non-null values of a column (insertion order)."""
        seen = []
        seen_set = set()
        position = self._schema.position(name)
        mask = self._store.null_mask(position)
        for value, null in zip(self._store.column(position), mask):
            if null:
                continue
            marker = (type(value).__name__, str(value))
            if marker not in seen_set:
                seen_set.add(marker)
                seen.append(value)
        return seen

    # -- display -------------------------------------------------------------------

    def to_text(self, limit: int = 20) -> str:
        """ASCII rendering for examples and the CLI."""
        names = list(self._schema.names)
        shown = self._store.row_tuples()[:limit]
        widths = [len(n) for n in names]
        rendered = []
        for values in shown:
            cells = ["" if is_null(v) else str(v) for v in values]
            rendered.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = []
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for cells in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)
