"""In-memory relation (table) abstraction.

:class:`Relation` is the unit of data exchanged between every HumMer
component: the catalog produces relations from registered sources, the
schema-matching step renames their columns and outer-unions them, duplicate
detection appends an ``objectID`` column and conflict resolution collapses
each object cluster to one row.

The design follows the paper's XXL substrate: a relation is a schema plus an
iterable of rows.  Rows are stored as tuples aligned with the schema; cell
access by column name goes through the schema's position index.  Relations
are *logically* immutable — all mutating helpers return new relations — which
makes the pipeline steps and the query operators freely composable.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine.schema import Column, Schema
from repro.engine.types import DataType, coerce, infer_column_type, is_null
from repro.exceptions import SchemaError

__all__ = ["Row", "Relation"]


class Row(Mapping[str, Any]):
    """A single tuple of a relation, addressable by position or column name."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[Any]):
        if len(values) != len(schema):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(schema)} columns"
            )
        self._schema = schema
        self._values = tuple(values)

    # Mapping protocol -------------------------------------------------------

    def __getitem__(self, key: Union[str, int]) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.position(key)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values and self._schema == other._schema
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        cells = ", ".join(f"{name}={value!r}" for name, value in self.items())
        return f"Row({cells})"

    # Convenience -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """Schema this row conforms to."""
        return self._schema

    @property
    def values(self) -> Tuple[Any, ...]:
        """Cell values in schema order."""
        return self._values

    def get(self, key: str, default: Any = None) -> Any:
        if isinstance(key, str) and not self._schema.has_column(key):
            return default
        return self[key]

    def to_dict(self) -> Dict[str, Any]:
        """Plain ``dict`` of column name → value."""
        return dict(zip(self._schema.names, self._values))

    def replace(self, **updates: Any) -> "Row":
        """Return a copy of the row with some cells replaced (by column name)."""
        values = list(self._values)
        for name, value in updates.items():
            values[self._schema.position(name)] = value
        return Row(self._schema, values)


class Relation:
    """An in-memory table: a :class:`Schema` plus a list of rows.

    Relations are logically immutable; helpers such as :meth:`rename` or
    :meth:`with_column` return new relations sharing row storage where
    possible.
    """

    def __init__(
        self,
        schema: Union[Schema, Sequence[Union[Column, str, Tuple[str, DataType]]]],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
        coerce_types: bool = False,
    ):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._name = name
        width = len(self._schema)
        stored: List[Tuple[Any, ...]] = []
        for row in rows:
            values = tuple(row.values) if isinstance(row, Row) else tuple(row)
            if len(values) != width:
                raise SchemaError(
                    f"row {values!r} has {len(values)} values, expected {width}"
                )
            if coerce_types:
                values = tuple(
                    coerce(value, column.dtype)
                    for value, column in zip(values, self._schema.columns)
                )
            stored.append(values)
        self._rows = stored

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, Any]],
        schema: Optional[Schema] = None,
        name: str = "",
        infer_types: bool = True,
    ) -> "Relation":
        """Build a relation from dictionaries.

        When *schema* is omitted, the column order is first-seen key order and
        types are inferred from the data (unless *infer_types* is false).
        Missing keys become nulls.
        """
        materialized = list(records)
        if schema is None:
            names: List[str] = []
            seen = set()
            for record in materialized:
                for key in record:
                    if key.lower() not in seen:
                        seen.add(key.lower())
                        names.append(key)
            columns_by_name = {name_: [] for name_ in names}
            for record in materialized:
                lowered = {key.lower(): value for key, value in record.items()}
                for name_ in names:
                    columns_by_name[name_].append(lowered.get(name_.lower()))
            if infer_types:
                schema = Schema(
                    [Column(name_, infer_column_type(columns_by_name[name_])) for name_ in names]
                )
            else:
                schema = Schema(names)
        rows = []
        for record in materialized:
            lowered = {key.lower(): value for key, value in record.items()}
            rows.append(tuple(lowered.get(column.name.lower()) for column in schema))
        return cls(schema, rows, name=name)

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence[Any]], name: str = "", infer_types: bool = True
    ) -> "Relation":
        """Build a relation from a mapping of column name → list of values."""
        names = list(columns)
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        count = lengths.pop() if lengths else 0
        if infer_types:
            schema = Schema([Column(n, infer_column_type(columns[n])) for n in names])
        else:
            schema = Schema(names)
        rows = [tuple(columns[n][i] for n in names) for i in range(count)]
        return cls(schema, rows, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "") -> "Relation":
        """An empty relation with the given schema."""
        return cls(schema, [], name=name)

    # -- basic protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        for values in self._rows:
            yield Row(self._schema, values)

    def __getitem__(self, index: Union[int, slice]) -> Union[Row, "Relation"]:
        if isinstance(index, slice):
            return Relation(self._schema, self._rows[index], name=self._name)
        return Row(self._schema, self._rows[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:
        label = self._name or "relation"
        return f"<Relation {label}: {len(self._schema)} columns x {len(self._rows)} rows>"

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def name(self) -> str:
        """Relation name (source alias or derived label)."""
        return self._name

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in order."""
        return self._schema.names

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        """Raw row tuples (a copy, so callers cannot mutate internal state)."""
        return list(self._rows)

    def row(self, index: int) -> Row:
        """The *index*-th row."""
        return Row(self._schema, self._rows[index])

    def column(self, name: str) -> List[Any]:
        """All values of column *name*, in row order."""
        position = self._schema.position(name)
        return [values[position] for values in self._rows]

    def cell(self, row_index: int, column: str) -> Any:
        """Single cell value."""
        return self._rows[row_index][self._schema.position(column)]

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return not self._rows

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All rows as plain dictionaries."""
        return [dict(zip(self._schema.names, values)) for values in self._rows]

    # -- transformation helpers --------------------------------------------------

    def renamed(self, name: str) -> "Relation":
        """Same data under a different relation name."""
        result = Relation(self._schema, [], name=name)
        result._rows = self._rows
        return result

    def rename_columns(self, mapping: Dict[str, str]) -> "Relation":
        """Rename columns (old → new); data is shared, not copied."""
        result = Relation(self._schema.rename(mapping), [], name=self._name)
        result._rows = self._rows
        return result

    def with_column(
        self,
        column: Union[Column, str],
        values: Union[Sequence[Any], Callable[[Row], Any], Any] = None,
        position: Optional[int] = None,
    ) -> "Relation":
        """Return a relation with one extra column.

        *values* may be a sequence (one value per row), a callable applied to
        each :class:`Row`, or a single constant.
        """
        new_column = column if isinstance(column, Column) else Column(column)
        if callable(values):
            computed = [values(Row(self._schema, row)) for row in self._rows]
        elif isinstance(values, (list, tuple)):
            if len(values) != len(self._rows):
                raise SchemaError(
                    f"expected {len(self._rows)} values for new column, got {len(values)}"
                )
            computed = list(values)
        else:
            computed = [values] * len(self._rows)
        schema = self._schema.add(new_column, position)
        insert_at = len(self._schema) if position is None else position
        rows = []
        for row_values, new_value in zip(self._rows, computed):
            row_list = list(row_values)
            row_list.insert(insert_at, new_value)
            rows.append(tuple(row_list))
        return Relation(schema, rows, name=self._name)

    def without_columns(self, names: Sequence[str]) -> "Relation":
        """Return a relation with the given columns removed."""
        keep = [c.name for c in self._schema if c.name.lower() not in {n.lower() for n in names}]
        return self.project(keep)

    def project(self, names: Sequence[str]) -> "Relation":
        """Return a relation restricted to the given columns, in order."""
        positions = self._schema.positions(names)
        schema = self._schema.project(names)
        rows = [tuple(values[p] for p in positions) for values in self._rows]
        return Relation(schema, rows, name=self._name)

    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Return a relation keeping only rows where *predicate* is true."""
        rows = [values for values in self._rows if predicate(Row(self._schema, values))]
        return Relation(self._schema, rows, name=self._name)

    def map_column(self, name: str, transform: Callable[[Any], Any]) -> "Relation":
        """Return a relation with *transform* applied to every cell of a column."""
        position = self._schema.position(name)
        rows = []
        for values in self._rows:
            row_list = list(values)
            row_list[position] = transform(row_list[position])
            rows.append(tuple(row_list))
        return Relation(self._schema, rows, name=self._name)

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Return a relation with extra rows appended."""
        return Relation(self._schema, self._rows + [tuple(r) for r in rows], name=self._name)

    def sorted_by(self, names: Sequence[str], descending: bool = False) -> "Relation":
        """Rows sorted by the given columns (nulls first)."""
        from repro.engine.types import compare_values
        import functools

        positions = self._schema.positions(names)

        def compare(left: Tuple[Any, ...], right: Tuple[Any, ...]) -> int:
            for p in positions:
                outcome = compare_values(left[p], right[p])
                if outcome:
                    return outcome
            return 0

        ordered = sorted(self._rows, key=functools.cmp_to_key(compare), reverse=descending)
        return Relation(self._schema, ordered, name=self._name)

    def head(self, count: int) -> "Relation":
        """First *count* rows."""
        return Relation(self._schema, self._rows[:count], name=self._name)

    def copy(self) -> "Relation":
        """Deep copy (rows are tuples, so a shallow row-list copy suffices)."""
        return Relation(self._schema, list(self._rows), name=self._name)

    def coerced(self) -> "Relation":
        """Return a relation with every cell coerced to its declared column type."""
        return Relation(self._schema, self._rows, name=self._name, coerce_types=True)

    def retyped(self) -> "Relation":
        """Return a relation whose column types are re-inferred from the data."""
        columns = []
        for index, column in enumerate(self._schema.columns):
            values = (row[index] for row in self._rows)
            columns.append(column.with_type(infer_column_type(values)))
        result = Relation(Schema(columns), [], name=self._name)
        result._rows = self._rows
        return result

    def content_key(self) -> Tuple[Any, ...]:
        """Hashable, equality-comparable key over column names and row values.

        Relations are *logically* immutable, so components may cache derived
        structures (e.g. blocking indexes) per relation.  Keying such caches
        on ``id(relation)`` breaks in two ways: a recycled object id can serve
        a stale entry, and an equal-content clone misses the cache.  This key
        captures what the relation *contains* instead — and because it is the
        content itself (not just a hash of it), dict lookups verify equality,
        so a hash collision can never serve another relation's cache entry.
        It is rebuilt on every call (O(rows)) precisely so callers that mutate
        row storage in place — against the immutability convention — still
        get fresh cache entries rather than stale ones.  Cells are keyed as
        ``(type, value)`` because Python's cross-type equality (``True == 1
        == 1.0``) would otherwise conflate relations whose *textual* cell
        forms — what tokenisation and the similarity measures see — differ.
        Unhashable cell values fall back to the rows' ``repr``.
        """
        key = (
            self._schema.names,
            tuple(
                tuple((type(value), value) for value in row) for row in self._rows
            ),
        )
        try:
            hash(key)
        except TypeError:
            return (self._schema.names, repr(self._rows))
        return key

    def content_hash(self) -> int:
        """Order-sensitive hash of :meth:`content_key`."""
        return hash(self.content_key())

    def content_digest(self) -> str:
        """Stable hex digest of the relation's content.

        Unlike :meth:`content_hash` (Python's salted ``hash``, which differs
        between processes), this digest is reproducible across runs, so it can
        key *persisted* derived structures — the prepared-source artifacts a
        catalog stores on disk and validates against the current data on every
        query.  Cells are folded as ``(type name, repr)``, matching the
        cross-type separation of :meth:`content_key`.
        """
        import hashlib

        hasher = hashlib.sha256()
        hasher.update(repr(self._schema.names).encode("utf-8"))
        for row in self._rows:
            hasher.update(
                repr(tuple((type(value).__name__, repr(value)) for value in row)).encode(
                    "utf-8"
                )
            )
        return hasher.hexdigest()

    # -- statistics ---------------------------------------------------------------

    def null_count(self, name: str) -> int:
        """Number of null cells in a column."""
        return sum(1 for value in self.column(name) if is_null(value))

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct non-null values of a column (insertion order)."""
        seen = []
        seen_set = set()
        for value in self.column(name):
            if is_null(value):
                continue
            marker = (type(value).__name__, str(value))
            if marker not in seen_set:
                seen_set.add(marker)
                seen.append(value)
        return seen

    # -- display -------------------------------------------------------------------

    def to_text(self, limit: int = 20) -> str:
        """ASCII rendering for examples and the CLI."""
        names = list(self._schema.names)
        shown = self._rows[:limit]
        widths = [len(n) for n in names]
        rendered = []
        for values in shown:
            cells = ["" if is_null(v) else str(v) for v in values]
            rendered.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = []
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for cells in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)
