"""Schema model: columns and relation schemata.

A :class:`Schema` is an ordered collection of :class:`Column` objects.  Column
lookup is case-insensitive (as in SQL) but the original spelling is preserved
for display.  Schemata are immutable; transformation helpers return new
objects, which keeps operators in :mod:`repro.engine.operators` side-effect
free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.types import DataType
from repro.exceptions import DuplicateColumnError, SchemaError, UnknownColumnError

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single attribute of a relation.

    Attributes:
        name: attribute name as exposed to queries.
        dtype: declared :class:`DataType`.
        source: optional name of the source relation the column came from
            (set by the data-transformation step after schema matching).
        description: optional human-readable documentation.
    """

    name: str
    dtype: DataType = DataType.ANY
    source: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column with a different name."""
        return replace(self, name=new_name)

    def with_source(self, source: str) -> "Column":
        """Return a copy of this column annotated with its source relation."""
        return replace(self, source=source)

    def with_type(self, dtype: DataType) -> "Column":
        """Return a copy of this column with a different declared type."""
        return replace(self, dtype=dtype)

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


class Schema:
    """Ordered, immutable collection of :class:`Column` objects."""

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Union[Column, str, Tuple[str, DataType]]]):
        normalized: List[Column] = []
        for item in columns:
            if isinstance(item, Column):
                normalized.append(item)
            elif isinstance(item, str):
                normalized.append(Column(item))
            elif isinstance(item, tuple) and len(item) == 2:
                normalized.append(Column(item[0], item[1]))
            else:
                raise SchemaError(f"cannot build a Column from {item!r}")
        index: Dict[str, int] = {}
        for position, column in enumerate(normalized):
            key = column.name.lower()
            if key in index:
                raise DuplicateColumnError(f"duplicate column name {column.name!r}")
            index[key] = position
        self._columns: Tuple[Column, ...] = tuple(normalized)
        self._index: Dict[str, int] = index

    # -- basic container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._index

    def __getitem__(self, key: Union[int, str]) -> Column:
        if isinstance(key, int):
            return self._columns[key]
        return self.column(key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(str(column) for column in self._columns)
        return f"Schema({inner})"

    # -- lookup --------------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The columns, in order."""
        return self._columns

    @property
    def names(self) -> Tuple[str, ...]:
        """Column names, in order."""
        return tuple(column.name for column in self._columns)

    def column(self, name: str) -> Column:
        """Return the column called *name* (case-insensitive)."""
        return self._columns[self.position(name)]

    def position(self, name: str) -> int:
        """Return the ordinal position of column *name*.

        Raises:
            UnknownColumnError: if no column has that name.
        """
        try:
            return self._index[name.lower()]
        except KeyError:
            raise UnknownColumnError(name, self.names) from None

    def has_column(self, name: str) -> bool:
        """Whether a column called *name* exists (case-insensitive)."""
        return name.lower() in self._index

    def positions(self, names: Sequence[str]) -> List[int]:
        """Positions for several column names, in the given order."""
        return [self.position(name) for name in names]

    def dtype(self, name: str) -> DataType:
        """Declared type of column *name*."""
        return self.column(name).dtype

    # -- transformation helpers ----------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to *names*, in the given order."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Schema with columns renamed according to *mapping* (old → new)."""
        lowered = {old.lower(): new for old, new in mapping.items()}
        for old in mapping:
            if not self.has_column(old):
                raise UnknownColumnError(old, self.names)
        return Schema(
            [
                column.renamed(lowered[column.name.lower()])
                if column.name.lower() in lowered
                else column
                for column in self._columns
            ]
        )

    def add(self, column: Column, position: Optional[int] = None) -> "Schema":
        """Schema with *column* appended (or inserted at *position*)."""
        columns = list(self._columns)
        if position is None:
            columns.append(column)
        else:
            columns.insert(position, column)
        return Schema(columns)

    def drop(self, names: Sequence[str]) -> "Schema":
        """Schema without the columns in *names*."""
        doomed = {name.lower() for name in names}
        for name in names:
            if not self.has_column(name):
                raise UnknownColumnError(name, self.names)
        return Schema([column for column in self._columns if column.name.lower() not in doomed])

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every column name prefixed ``prefix.name`` (used by joins)."""
        return Schema([column.renamed(f"{prefix}.{column.name}") for column in self._columns])

    def with_sources(self, source: str) -> "Schema":
        """Schema with every column annotated as coming from *source*."""
        return Schema([column.with_source(source) for column in self._columns])

    def merge_outer(self, other: "Schema") -> "Schema":
        """Outer-union schema: this schema's columns followed by columns that
        appear only in *other* (matched case-insensitively by name)."""
        extra = [column for column in other if not self.has_column(column.name)]
        return Schema(list(self._columns) + extra)

    @staticmethod
    def union_all(schemas: Sequence["Schema"]) -> "Schema":
        """Outer-union of several schemata, preserving first-seen column order."""
        if not schemas:
            raise SchemaError("cannot union an empty list of schemata")
        result = schemas[0]
        for schema in schemas[1:]:
            result = result.merge_outer(schema)
        return result
