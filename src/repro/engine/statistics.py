"""Relation profiling statistics.

Used by the duplicate-detection heuristics ("interesting" attribute
selection) and by the documentation/CLI to describe registered sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engine.relation import Relation
from repro.engine.types import DataType, is_null

__all__ = ["ColumnStatistics", "RelationStatistics", "profile_relation"]


@dataclass
class ColumnStatistics:
    """Profile of one column."""

    name: str
    dtype: DataType
    row_count: int
    null_count: int
    distinct_count: int
    average_length: float

    @property
    def null_ratio(self) -> float:
        """Fraction of cells that are null."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def distinctness(self) -> float:
        """Distinct non-null values divided by non-null cells (identifying power proxy)."""
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return 0.0
        return self.distinct_count / non_null

    @property
    def completeness(self) -> float:
        """Fraction of cells that carry a value."""
        return 1.0 - self.null_ratio


@dataclass
class RelationStatistics:
    """Profile of a whole relation."""

    name: str
    row_count: int
    column_count: int
    columns: Dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        """Statistics of one column (case-insensitive)."""
        return self.columns[name.lower()]


def profile_relation(relation: Relation) -> RelationStatistics:
    """Compute per-column statistics for *relation*."""
    columns: Dict[str, ColumnStatistics] = {}
    row_count = len(relation)
    for column in relation.schema:
        values = relation.column(column.name)
        null_count = 0
        lengths: List[int] = []
        distinct = set()
        for value in values:
            if is_null(value):
                null_count += 1
                continue
            text = str(value)
            lengths.append(len(text))
            distinct.add(text)
        average_length = sum(lengths) / len(lengths) if lengths else 0.0
        columns[column.name.lower()] = ColumnStatistics(
            name=column.name,
            dtype=column.dtype,
            row_count=row_count,
            null_count=null_count,
            distinct_count=len(distinct),
            average_length=average_length,
        )
    return RelationStatistics(
        name=relation.name,
        row_count=row_count,
        column_count=len(relation.schema),
        columns=columns,
    )
