"""Expression language evaluated over rows.

The Fuse By planner compiles WHERE / HAVING predicates and SELECT items into
these expression objects, and the engine operators evaluate them row by row.
The expression language deliberately mirrors the SQL subset the paper
supports: column references, literals, arithmetic, comparisons with SQL null
semantics, boolean connectives, ``IS [NOT] NULL``, ``IN``, ``BETWEEN`` and
``LIKE``.
"""

from __future__ import annotations

import abc
import re
from typing import Any, List, Optional, Sequence

from repro.engine.relation import Row
from repro.engine.types import is_null, values_equal
from repro.exceptions import ExpressionError

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
    "BooleanOp",
    "NotOp",
    "IsNull",
    "InList",
    "Between",
    "Like",
    "FunctionCall",
    "CaseWhen",
]


class Expression(abc.ABC):
    """Base class of every evaluable expression."""

    @abc.abstractmethod
    def evaluate(self, row: Row) -> Any:
        """Evaluate the expression against *row*."""

    @abc.abstractmethod
    def references(self) -> List[str]:
        """Column names referenced by this expression (possibly with repeats)."""

    def __call__(self, row: Row) -> Any:
        return self.evaluate(row)


class ColumnRef(Expression):
    """Reference to a column by name (optionally qualified ``table.column``)."""

    def __init__(self, name: str):
        if not name:
            raise ExpressionError("column reference needs a name")
        self.name = name

    def evaluate(self, row: Row) -> Any:
        schema = row.schema
        if schema.has_column(self.name):
            return row[self.name]
        # fall back to the unqualified name: "Students.Name" -> "Name"
        if "." in self.name:
            unqualified = self.name.split(".")[-1]
            if schema.has_column(unqualified):
                return row[unqualified]
        raise ExpressionError(
            f"unknown column {self.name!r}; available: {', '.join(schema.names)}"
        )

    def references(self) -> List[str]:
        return [self.name]

    def __repr__(self) -> str:
        return f"ColumnRef({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, row: Row) -> Any:
        return self.value

    def references(self) -> List[str]:
        return []

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


_ARITHMETIC: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class BinaryOp(Expression):
    """Arithmetic (or string concatenation via ``+``) on two sub-expressions."""

    def __init__(self, operator: str, left: Expression, right: Expression):
        if operator not in _ARITHMETIC:
            raise ExpressionError(f"unsupported binary operator {operator!r}")
        self.operator = operator
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if is_null(left) or is_null(right):
            return None
        try:
            return _ARITHMETIC[self.operator](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(
                f"cannot evaluate {left!r} {self.operator} {right!r}: {exc}"
            ) from exc

    def references(self) -> List[str]:
        return self.left.references() + self.right.references()

    def __repr__(self) -> str:
        return f"BinaryOp({self.left!r} {self.operator} {self.right!r})"


class UnaryOp(Expression):
    """Unary minus / plus."""

    def __init__(self, operator: str, operand: Expression):
        if operator not in ("-", "+"):
            raise ExpressionError(f"unsupported unary operator {operator!r}")
        self.operator = operator
        self.operand = operand

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if is_null(value):
            return None
        return -value if self.operator == "-" else +value

    def references(self) -> List[str]:
        return self.operand.references()


def _null_safe_compare(operator: str, left: Any, right: Any) -> Optional[bool]:
    """SQL three-valued comparison: any null operand yields ``None`` (unknown)."""
    if is_null(left) or is_null(right):
        return None
    if operator == "=":
        return values_equal(left, right)
    if operator in ("!=", "<>"):
        return not values_equal(left, right)
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        # incomparable types: compare string renderings, as ORDER BY does
        left, right = str(left), str(right)
        return _null_safe_compare(operator, left, right)
    raise ExpressionError(f"unsupported comparison operator {operator!r}")


class Comparison(Expression):
    """Comparison with SQL null semantics (``=``, ``!=``, ``<``, ...)."""

    OPERATORS = ("=", "!=", "<>", "<", "<=", ">", ">=")

    def __init__(self, operator: str, left: Expression, right: Expression):
        if operator not in self.OPERATORS:
            raise ExpressionError(f"unsupported comparison operator {operator!r}")
        self.operator = operator
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Optional[bool]:
        return _null_safe_compare(self.operator, self.left.evaluate(row), self.right.evaluate(row))

    def references(self) -> List[str]:
        return self.left.references() + self.right.references()

    def __repr__(self) -> str:
        return f"Comparison({self.left!r} {self.operator} {self.right!r})"


class BooleanOp(Expression):
    """``AND`` / ``OR`` over sub-expressions, with three-valued logic."""

    def __init__(self, operator: str, operands: Sequence[Expression]):
        operator = operator.upper()
        if operator not in ("AND", "OR"):
            raise ExpressionError(f"unsupported boolean operator {operator!r}")
        if not operands:
            raise ExpressionError("boolean operator needs at least one operand")
        self.operator = operator
        self.operands = list(operands)

    def evaluate(self, row: Row) -> Optional[bool]:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is None:
                saw_unknown = True
                continue
            truthy = bool(value)
            if self.operator == "AND" and not truthy:
                return False
            if self.operator == "OR" and truthy:
                return True
        if saw_unknown:
            return None
        return self.operator == "AND"

    def references(self) -> List[str]:
        refs: List[str] = []
        for operand in self.operands:
            refs.extend(operand.references())
        return refs


class NotOp(Expression):
    """Logical negation with three-valued logic."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not bool(value)

    def references(self) -> List[str]:
        return self.operand.references()


class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    def __init__(self, operand: Expression, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def evaluate(self, row: Row) -> bool:
        result = is_null(self.operand.evaluate(row))
        return not result if self.negated else result

    def references(self) -> List[str]:
        return self.operand.references()


class InList(Expression):
    """``expr IN (v1, v2, ...)`` with SQL null semantics."""

    def __init__(self, operand: Expression, choices: Sequence[Expression], negated: bool = False):
        self.operand = operand
        self.choices = list(choices)
        self.negated = negated

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if is_null(value):
            return None
        found = False
        saw_null = False
        for choice in self.choices:
            candidate = choice.evaluate(row)
            if is_null(candidate):
                saw_null = True
            elif values_equal(value, candidate):
                found = True
                break
        if not found and saw_null:
            return None
        return not found if self.negated else found

    def references(self) -> List[str]:
        refs = self.operand.references()
        for choice in self.choices:
            refs.extend(choice.references())
        return refs


class Between(Expression):
    """``expr BETWEEN low AND high``."""

    def __init__(
        self, operand: Expression, low: Expression, high: Expression, negated: bool = False
    ):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def evaluate(self, row: Row) -> Optional[bool]:
        lower = _null_safe_compare(">=", self.operand.evaluate(row), self.low.evaluate(row))
        upper = _null_safe_compare("<=", self.operand.evaluate(row), self.high.evaluate(row))
        if lower is None or upper is None:
            return None
        result = lower and upper
        return not result if self.negated else result

    def references(self) -> List[str]:
        return self.operand.references() + self.low.references() + self.high.references()


class Like(Expression):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (case-insensitive)."""

    def __init__(self, operand: Expression, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = re.compile(self._translate(pattern), re.IGNORECASE | re.DOTALL)

    @staticmethod
    def _translate(pattern: str) -> str:
        out = []
        for char in pattern:
            if char == "%":
                out.append(".*")
            elif char == "_":
                out.append(".")
            else:
                out.append(re.escape(char))
        return "^" + "".join(out) + "$"

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if is_null(value):
            return None
        result = bool(self._regex.match(str(value)))
        return not result if self.negated else result

    def references(self) -> List[str]:
        return self.operand.references()


_SCALAR_FUNCTIONS: dict = {
    "upper": lambda v: None if is_null(v) else str(v).upper(),
    "lower": lambda v: None if is_null(v) else str(v).lower(),
    "trim": lambda v: None if is_null(v) else str(v).strip(),
    "length": lambda v: None if is_null(v) else len(str(v)),
    "abs": lambda v: None if is_null(v) else abs(v),
    "round": lambda v, digits=0: None if is_null(v) else round(v, int(digits)),
    "coalesce": lambda *vs: next((v for v in vs if not is_null(v)), None),
}


class FunctionCall(Expression):
    """Call to a scalar function (``UPPER``, ``LOWER``, ``COALESCE``, ...)."""

    def __init__(self, name: str, arguments: Sequence[Expression]):
        key = name.lower()
        if key not in _SCALAR_FUNCTIONS:
            raise ExpressionError(
                f"unknown scalar function {name!r}; "
                f"known: {', '.join(sorted(_SCALAR_FUNCTIONS))}"
            )
        self.name = key
        self.arguments = list(arguments)

    def evaluate(self, row: Row) -> Any:
        values = [argument.evaluate(row) for argument in self.arguments]
        try:
            return _SCALAR_FUNCTIONS[self.name](*values)
        except TypeError as exc:
            raise ExpressionError(f"bad arguments to {self.name}(): {exc}") from exc

    def references(self) -> List[str]:
        refs: List[str] = []
        for argument in self.arguments:
            refs.extend(argument.references())
        return refs

    @staticmethod
    def known_functions() -> List[str]:
        """Names of the registered scalar functions."""
        return sorted(_SCALAR_FUNCTIONS)


class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(
        self,
        branches: Sequence[tuple],
        default: Optional[Expression] = None,
    ):
        if not branches:
            raise ExpressionError("CASE needs at least one WHEN branch")
        self.branches = [(cond, value) for cond, value in branches]
        self.default = default

    def evaluate(self, row: Row) -> Any:
        for condition, value in self.branches:
            outcome = condition.evaluate(row)
            if outcome:
                return value.evaluate(row)
        if self.default is not None:
            return self.default.evaluate(row)
        return None

    def references(self) -> List[str]:
        refs: List[str] = []
        for condition, value in self.branches:
            refs.extend(condition.references())
            refs.extend(value.references())
        if self.default is not None:
            refs.extend(self.default.references())
        return refs
