"""Evaluation metrics for the experiments (E1-E5).

* :mod:`repro.evaluation.matching_metrics` — precision / recall / F1 of
  attribute correspondences against the generator's ground truth.
* :mod:`repro.evaluation.dedup_metrics` — pairwise precision / recall / F1 of
  duplicate detection, plus cluster-level exactness.
* :mod:`repro.evaluation.fusion_metrics` — completeness, conciseness and
  correctness of a fused result (the data-fusion quality dimensions).
* :mod:`repro.evaluation.timing` — simple wall-clock measurement helpers for
  the scalability experiment.
"""

from repro.evaluation.matching_metrics import PrecisionRecall, evaluate_correspondences
from repro.evaluation.dedup_metrics import (
    evaluate_clusters,
    evaluate_duplicate_pairs,
    pairs_from_clusters,
)
from repro.evaluation.fusion_metrics import FusionQuality, evaluate_fusion
from repro.evaluation.timing import Timer, time_call

__all__ = [
    "PrecisionRecall",
    "evaluate_correspondences",
    "evaluate_duplicate_pairs",
    "evaluate_clusters",
    "pairs_from_clusters",
    "FusionQuality",
    "evaluate_fusion",
    "Timer",
    "time_call",
]
