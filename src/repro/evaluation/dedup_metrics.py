"""Pairwise and cluster-level duplicate-detection metrics."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.evaluation.matching_metrics import PrecisionRecall

__all__ = ["pairs_from_clusters", "evaluate_duplicate_pairs", "evaluate_clusters"]


def _normalised(pairs: Iterable[Tuple[int, int]]) -> Set[Tuple[int, int]]:
    return {(min(a, b), max(a, b)) for a, b in pairs if a != b}


def pairs_from_clusters(assignment: Sequence[int]) -> Set[Tuple[int, int]]:
    """All within-cluster index pairs implied by a cluster assignment."""
    by_cluster: Dict[int, List[int]] = {}
    for index, cluster in enumerate(assignment):
        by_cluster.setdefault(cluster, []).append(index)
    pairs: Set[Tuple[int, int]] = set()
    for members in by_cluster.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                pairs.add((members[i], members[j]))
    return pairs


def evaluate_duplicate_pairs(
    predicted_pairs: Iterable[Tuple[int, int]],
    true_pairs: Iterable[Tuple[int, int]],
) -> PrecisionRecall:
    """Pairwise precision / recall of predicted duplicate pairs."""
    return PrecisionRecall.from_sets(_normalised(predicted_pairs), _normalised(true_pairs))


def evaluate_clusters(
    assignment: Sequence[int],
    true_pairs: Iterable[Tuple[int, int]],
) -> PrecisionRecall:
    """Pairwise precision / recall implied by a full cluster assignment.

    This scores the *transitively closed* result — what the user actually
    sees — rather than the raw above-threshold pairs, so over-merging through
    chains of borderline pairs is penalised.
    """
    return evaluate_duplicate_pairs(pairs_from_clusters(assignment), true_pairs)
