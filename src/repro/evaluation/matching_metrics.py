"""Precision / recall of attribute correspondences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from repro.matching.correspondences import CorrespondenceSet

__all__ = ["PrecisionRecall", "evaluate_correspondences"]


@dataclass
class PrecisionRecall:
    """Standard precision / recall / F1 triple with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of predicted items that are correct (1.0 when nothing was predicted)."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        """Fraction of true items that were found (1.0 when there was nothing to find)."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_dict(self) -> dict:
        """All counts and derived scores as a plain dictionary."""
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    @classmethod
    def from_sets(cls, predicted: Set, truth: Set) -> "PrecisionRecall":
        """Build the triple by comparing a predicted set against a truth set."""
        true_positives = len(predicted & truth)
        return cls(
            true_positives=true_positives,
            false_positives=len(predicted) - true_positives,
            false_negatives=len(truth) - true_positives,
        )


def evaluate_correspondences(
    correspondences: CorrespondenceSet,
    true_pairs: Iterable[Tuple[str, str]],
) -> PrecisionRecall:
    """Compare predicted correspondences against true (left label, right label) pairs.

    Comparison is case-insensitive; each correspondence contributes its
    ``(left_attribute, right_attribute)`` pair.
    """
    predicted = {
        (c.left_attribute.lower(), c.right_attribute.lower()) for c in correspondences
    }
    truth = {(left.lower(), right.lower()) for left, right in true_pairs}
    return PrecisionRecall.from_sets(predicted, truth)
