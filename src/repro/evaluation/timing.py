"""Wall-clock timing helpers for the scalability experiment."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Timer", "time_call"]


@dataclass
class Timer:
    """Accumulates named timings across repeated measurements."""

    measurements: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Add one measurement for *name*."""
        self.measurements.setdefault(name, []).append(seconds)

    def measure(self, name: str, function: Callable[[], Any]) -> Any:
        """Time one call of *function* under *name* and return its result."""
        started = time.perf_counter()
        result = function()
        self.record(name, time.perf_counter() - started)
        return result

    def mean(self, name: str) -> float:
        """Mean of the measurements recorded under *name*."""
        values = self.measurements.get(name, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def total(self, name: str) -> float:
        """Sum of the measurements recorded under *name*."""
        return sum(self.measurements.get(name, []))

    def as_dict(self) -> Dict[str, float]:
        """Mean per name."""
        return {name: self.mean(name) for name in self.measurements}


def time_call(function: Callable[[], Any]) -> Tuple[Any, float]:
    """Run *function* once and return ``(result, seconds)``."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started
