"""Quality metrics of a fused result: completeness, conciseness, correctness.

These are the standard data-fusion quality dimensions the Fuse By companion
paper argues with:

* **completeness** — how much of the available information survives: fraction
  of (entity, attribute) slots of the ground truth for which the fused result
  has *some* non-null value.
* **conciseness** — one tuple per real-world entity: distinct entities
  divided by the number of result tuples (1.0 means no remaining duplicates,
  < 1.0 means redundancy).
* **correctness** — fraction of filled slots whose value matches the clean
  ground-truth value (up to normalisation / numeric tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.similarity.tokenize import normalize_text

__all__ = ["FusionQuality", "evaluate_fusion"]


@dataclass
class FusionQuality:
    """Completeness / conciseness / correctness of one fused result."""

    completeness: float
    conciseness: float
    correctness: float
    tuple_count: int
    entity_count: int

    def as_dict(self) -> Dict[str, float]:
        """All scores as a plain dictionary."""
        return {
            "completeness": self.completeness,
            "conciseness": self.conciseness,
            "correctness": self.correctness,
            "tuples": self.tuple_count,
            "entities": self.entity_count,
        }


def _values_match(result_value: Any, truth_value: Any) -> bool:
    if is_null(result_value) or is_null(truth_value):
        return False
    if isinstance(truth_value, (int, float)) and not isinstance(truth_value, bool):
        try:
            return abs(float(result_value) - float(truth_value)) <= max(
                0.01, 0.1 * abs(float(truth_value))
            )
        except (TypeError, ValueError):
            return False
    return normalize_text(str(result_value)) == normalize_text(str(truth_value))


def evaluate_fusion(
    result: Relation,
    clean_records: Mapping[str, Mapping[str, Any]],
    entity_key_column: str,
    entity_key_attribute: str,
    attributes: Optional[Sequence[str]] = None,
) -> FusionQuality:
    """Score a fused *result* against the generator's clean records.

    Result tuples are aligned to entities via a key column (e.g. the fused
    ``title`` matched against the clean ``title``); this keeps the metric
    independent of internal objectIDs.

    Args:
        result: the fused relation.
        clean_records: entity id → clean attribute dict (ground truth).
        entity_key_column: column of *result* used to identify the entity.
        entity_key_attribute: attribute of the clean records it corresponds to.
        attributes: which clean attributes to score (default: all that also
            appear as columns of *result*).
    """
    truth_by_key: Dict[str, Dict[str, Any]] = {}
    for record in clean_records.values():
        key = normalize_text(str(record.get(entity_key_attribute, "")))
        if key:
            truth_by_key.setdefault(key, dict(record))

    if attributes is None:
        attributes = [
            name
            for name in truth_by_key[next(iter(truth_by_key))].keys()
            if result.schema.has_column(name)
        ] if truth_by_key else []

    matched_entities = set()
    filled_slots = 0
    correct_slots = 0
    total_slots = 0

    for row in result:
        key_value = row.get(entity_key_column)
        if is_null(key_value):
            continue
        truth = truth_by_key.get(normalize_text(str(key_value)))
        if truth is None:
            # fuzzy fallback: prefix match on the key
            key_norm = normalize_text(str(key_value))
            candidates = [k for k in truth_by_key if k.startswith(key_norm[:6])] if key_norm else []
            truth = truth_by_key.get(candidates[0]) if candidates else None
        if truth is None:
            continue
        matched_entities.add(normalize_text(str(truth.get(entity_key_attribute, ""))))
        for attribute in attributes:
            total_slots += 1
            value = row.get(attribute)
            if is_null(value):
                continue
            filled_slots += 1
            if _values_match(value, truth.get(attribute)):
                correct_slots += 1

    entity_count = len(matched_entities)
    tuple_count = len(result)
    completeness = filled_slots / total_slots if total_slots else 0.0
    correctness = correct_slots / filled_slots if filled_slots else 0.0
    conciseness = entity_count / tuple_count if tuple_count else 0.0
    return FusionQuality(
        completeness=completeness,
        conciseness=min(1.0, conciseness),
        correctness=correctness,
        tuple_count=tuple_count,
        entity_count=entity_count,
    )
