"""Field-wise similarity matrices over seed duplicates (DUMAS step 2).

"Two duplicates are compared field-wise using the SoftTFIDF similarity
measure, resulting in a matrix containing similarity scores for each
attribute combination.  The matrices of each duplicate are averaged, and the
maximum weight matching is computed." (paper §2.2)
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.matching.duplicate_seed import SeedPair
from repro.similarity.base import SimilarityMeasure
from repro.similarity.soft_tfidf import SoftTfIdfSimilarity

__all__ = ["FieldSimilarityMatrix", "build_field_matrix", "average_matrices"]


class FieldSimilarityMatrix:
    """A |left attributes| x |right attributes| matrix of similarity scores."""

    def __init__(
        self,
        left_attributes: Sequence[str],
        right_attributes: Sequence[str],
        scores: Optional[np.ndarray] = None,
    ):
        self.left_attributes = list(left_attributes)
        self.right_attributes = list(right_attributes)
        if scores is None:
            scores = np.zeros((len(self.left_attributes), len(self.right_attributes)))
        scores = np.asarray(scores, dtype=float)
        expected = (len(self.left_attributes), len(self.right_attributes))
        if scores.shape != expected:
            raise ValueError(f"score matrix shape {scores.shape} != {expected}")
        self.scores = scores

    def get(self, left_attribute: str, right_attribute: str) -> float:
        """Score for one attribute pair."""
        i = self.left_attributes.index(left_attribute)
        j = self.right_attributes.index(right_attribute)
        return float(self.scores[i, j])

    def set(self, left_attribute: str, right_attribute: str, score: float) -> None:
        """Set the score for one attribute pair."""
        i = self.left_attributes.index(left_attribute)
        j = self.right_attributes.index(right_attribute)
        self.scores[i, j] = score

    def copy(self) -> "FieldSimilarityMatrix":
        return FieldSimilarityMatrix(
            self.left_attributes, self.right_attributes, self.scores.copy()
        )

    def __repr__(self) -> str:
        return (
            f"FieldSimilarityMatrix({len(self.left_attributes)}x"
            f"{len(self.right_attributes)})"
        )


def build_field_matrix(
    left: Relation,
    right: Relation,
    seed: SeedPair,
    measure: Optional[Callable[[str, str], float]] = None,
) -> FieldSimilarityMatrix:
    """Compare one seed-duplicate pair field by field.

    Cells where either value is null get score 0 — a missing value carries no
    evidence for or against a correspondence.

    When *measure* is a :class:`SimilarityMeasure` (or omitted — the default
    SoftTFIDF is one), the whole non-null field cross product is scored as
    one :meth:`~SimilarityMeasure.compare_batch` call, so the measure's batch
    kernel can vectorise over the repeated field values.  Plain callables are
    applied per cell pair as before; both paths produce bit-identical cells.
    """
    left_values = left.row_values(seed.left_index)
    right_values = right.row_values(seed.right_index)
    if measure is None:
        corpus = [
            "" if is_null(value) else str(value)
            for values in (left_values, right_values)
            for value in values
        ]
        measure = SoftTfIdfSimilarity(corpus=corpus)
    matrix = FieldSimilarityMatrix(left.schema.names, right.schema.names)
    cells = [
        (i, j)
        for i, left_value in enumerate(left_values)
        if not is_null(left_value)
        for j, right_value in enumerate(right_values)
        if not is_null(right_value)
    ]
    if isinstance(measure, SimilarityMeasure):
        scores = measure.compare_batch(
            [str(left_values[i]) for i, _ in cells],
            [str(right_values[j]) for _, j in cells],
        )
        for (i, j), score in zip(cells, scores):
            matrix.scores[i, j] = score
    else:
        for i, j in cells:
            matrix.scores[i, j] = measure(str(left_values[i]), str(right_values[j]))
    return matrix


def average_matrices(matrices: Sequence[FieldSimilarityMatrix]) -> FieldSimilarityMatrix:
    """Average several per-duplicate matrices into one evidence matrix.

    Using several duplicates guards against two non-corresponding attributes
    that happen to share a value in a single tuple pair (paper §2.2).
    """
    if not matrices:
        raise ValueError("cannot average zero matrices")
    first = matrices[0]
    for matrix in matrices[1:]:
        if (
            matrix.left_attributes != first.left_attributes
            or matrix.right_attributes != first.right_attributes
        ):
            raise ValueError("matrices describe different attribute sets")
    stacked = np.stack([matrix.scores for matrix in matrices])
    return FieldSimilarityMatrix(
        first.left_attributes, first.right_attributes, stacked.mean(axis=0)
    )
