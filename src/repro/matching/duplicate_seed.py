"""Seed-duplicate discovery in unaligned tables (DUMAS step 1).

"DUMAS considers a tuple as one string and applies a string similarity
measure to extract the most similar tuple pairs.  From the information
retrieval field we adopt the well-known TFIDF similarity for comparing
records.  Experimental evaluation shows that the most similar tuples are in
fact duplicates." (paper §2.2)

The goal is *not* to find all duplicates — only enough high-precision seeds
for schema matching; exhaustive duplicate detection happens later in
:mod:`repro.dedup`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.similarity.tfidf import TfIdfVectorizer, cosine_similarity

__all__ = ["SeedPair", "DuplicateSeeder", "tuple_to_string"]


def tuple_to_string(values: Sequence, exclude_positions: Sequence[int] = ()) -> str:
    """Render a tuple as a single whitespace-joined string (nulls skipped)."""
    excluded = set(exclude_positions)
    parts = []
    for position, value in enumerate(values):
        if position in excluded or is_null(value):
            continue
        parts.append(str(value))
    return " ".join(parts)


@dataclass(frozen=True)
class SeedPair:
    """A candidate duplicate across two relations, found without aligned schemata."""

    left_index: int
    right_index: int
    similarity: float

    def __lt__(self, other: "SeedPair") -> bool:  # heap ordering
        return self.similarity < other.similarity


class DuplicateSeeder:
    """Finds the top-k most similar cross-table tuple pairs by whole-tuple TF-IDF.

    Args:
        max_seeds: how many seed pairs to return (the k of top-k).
        min_similarity: pairs below this cosine similarity are never returned,
            even if fewer than *max_seeds* pairs qualify.
        max_tuples_per_relation: optional cap; larger relations are sampled by
            taking every n-th tuple, keeping the seeding cost bounded
            (the efficiency point the DUMAS paper makes).
    """

    def __init__(
        self,
        max_seeds: int = 10,
        min_similarity: float = 0.25,
        max_tuples_per_relation: Optional[int] = 500,
    ):
        if max_seeds < 1:
            raise ValueError("max_seeds must be at least 1")
        self.max_seeds = max_seeds
        self.min_similarity = min_similarity
        self.max_tuples_per_relation = max_tuples_per_relation

    def find_seeds(self, left: Relation, right: Relation) -> List[SeedPair]:
        """Return the top seed pairs between *left* and *right*, best first."""
        left_indices = self._sample_indices(len(left))
        right_indices = self._sample_indices(len(right))
        left_strings = [tuple_to_string(left.rows[i]) for i in left_indices]
        right_strings = [tuple_to_string(right.rows[i]) for i in right_indices]

        vectorizer = TfIdfVectorizer()
        vectorizer.fit(left_strings + right_strings)
        left_vectors = [vectorizer.transform(text) for text in left_strings]
        right_vectors = [vectorizer.transform(text) for text in right_strings]

        # Invert the right-hand vectors so only pairs sharing at least one
        # term are scored (sparse dot products), instead of all |L| x |R|.
        postings: dict = {}
        for position, vector in enumerate(right_vectors):
            for term in vector:
                postings.setdefault(term, set()).add(position)

        heap: List[Tuple[float, int, int]] = []
        for left_position, left_vector in enumerate(left_vectors):
            candidates = set()
            for term in left_vector:
                candidates.update(postings.get(term, ()))
            for right_position in candidates:
                similarity = cosine_similarity(left_vector, right_vectors[right_position])
                if similarity < self.min_similarity:
                    continue
                entry = (similarity, left_position, right_position)
                if len(heap) < self.max_seeds:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)

        pairs = [
            SeedPair(
                left_index=left_indices[left_position],
                right_index=right_indices[right_position],
                similarity=similarity,
            )
            for similarity, left_position, right_position in heap
        ]
        pairs.sort(key=lambda pair: pair.similarity, reverse=True)
        return pairs

    def _sample_indices(self, size: int) -> List[int]:
        limit = self.max_tuples_per_relation
        if limit is None or size <= limit:
            return list(range(size))
        step = max(1, size // limit)
        return list(range(0, size, step))[:limit]
