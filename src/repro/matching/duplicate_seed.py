"""Seed-duplicate discovery in unaligned tables (DUMAS step 1).

"DUMAS considers a tuple as one string and applies a string similarity
measure to extract the most similar tuple pairs.  From the information
retrieval field we adopt the well-known TFIDF similarity for comparing
records.  Experimental evaluation shows that the most similar tuples are in
fact duplicates." (paper §2.2)

The goal is *not* to find all duplicates — only enough high-precision seeds
for schema matching; exhaustive duplicate detection happens later in
:mod:`repro.dedup`.

Seeding is split into two halves so the prepared-source artifact layer
(:mod:`repro.prepare`) can cache the expensive half per registered source:

* :func:`compute_seed_statistics` tokenises the (sampled) tuples of **one**
  relation into per-document term counts plus document frequencies — this is
  the only part that touches cell values, and it depends on nothing but the
  relation itself;
* :meth:`DuplicateSeeder.find_seeds` combines the statistics of the two
  relations into a **cross-source** TF-IDF model (document frequencies add,
  the corpus size is the sum) and scores candidate pairs — cheap, and
  necessarily per query because IDF is a property of the pair of sources.

Both halves together reproduce the original single-pass computation bit for
bit: fitting one vectorizer on ``left_strings + right_strings`` is exactly
merging the two sides' document frequencies.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.similarity.tfidf import TfIdfVectorizer, cosine_similarity
from repro.similarity.tokenize import tokenize

__all__ = [
    "SeedPair",
    "SeedStatistics",
    "SeedScoringStatistics",
    "DuplicateSeeder",
    "tuple_to_string",
    "compute_seed_statistics",
    "sample_indices",
]


def tuple_to_string(values: Sequence, exclude_positions: Sequence[int] = ()) -> str:
    """Render a tuple as a single whitespace-joined string (nulls skipped)."""
    excluded = set(exclude_positions)
    parts = []
    for position, value in enumerate(values):
        if position in excluded or is_null(value):
            continue
        parts.append(str(value))
    return " ".join(parts)


@dataclass(frozen=True)
class SeedPair:
    """A candidate duplicate across two relations, found without aligned schemata."""

    left_index: int
    right_index: int
    similarity: float

    def __lt__(self, other: "SeedPair") -> bool:  # heap ordering
        return self.similarity < other.similarity


@dataclass
class SeedStatistics:
    """Whole-tuple TF-IDF statistics of one relation, sufficient for seeding.

    This is the per-source artifact the prepared-source layer stores: given
    the statistics of two relations, :meth:`DuplicateSeeder.find_seeds`
    reconstructs the exact cross-source TF-IDF model the original
    fit-on-both-corpora computation produced, without re-reading a single
    cell value.

    Attributes:
        row_count: tuples in the relation the statistics describe.
        sample_limit: the ``max_tuples_per_relation`` the sample was drawn
            with (``None`` = no sampling) — statistics are only valid for a
            seeder using the same limit.
        indices: the sampled row indices (all rows when under the limit).
        documents: per sampled row, term → raw count in first-occurrence
            order (the order :func:`tokenize` produced, which downstream
            float summation depends on).
        document_frequency: term → number of sampled rows containing it.
    """

    row_count: int
    sample_limit: Optional[int]
    indices: List[int] = field(default_factory=list)
    documents: List[Dict[str, int]] = field(default_factory=list)
    document_frequency: Dict[str, int] = field(default_factory=dict)

    @property
    def document_count(self) -> int:
        return len(self.documents)


def sample_indices(size: int, limit: Optional[int]) -> List[int]:
    """Every n-th row index so at most *limit* rows are kept (all when under)."""
    if limit is None or size <= limit:
        return list(range(size))
    step = max(1, size // limit)
    return list(range(0, size, step))[:limit]


def compute_seed_statistics(
    relation: Relation, sample_limit: Optional[int]
) -> SeedStatistics:
    """Tokenise the (sampled) tuples of *relation* into seeding statistics.

    This is the expensive, per-source half of seed discovery; the result
    depends only on the relation content and *sample_limit*, so it can be
    built once per registered source and reused across queries.
    """
    indices = sample_indices(len(relation), sample_limit)
    rows = relation.rows
    documents: List[Dict[str, int]] = []
    document_frequency: Dict[str, int] = {}
    for index in indices:
        counts: Dict[str, int] = {}
        for token in tokenize(tuple_to_string(rows[index])):
            counts[token] = counts.get(token, 0) + 1
        documents.append(counts)
        for term in counts:
            document_frequency[term] = document_frequency.get(term, 0) + 1
    return SeedStatistics(
        row_count=len(relation),
        sample_limit=sample_limit,
        indices=indices,
        documents=documents,
        document_frequency=document_frequency,
    )


#: Resolver the prepared-source layer installs: given a relation and the
#: seeder's sample limit, return prebuilt statistics or ``None`` (→ compute).
SeedStatisticsProvider = Callable[[Relation, Optional[int]], Optional[SeedStatistics]]

#: Relative slack on the pruning upper bound.  The bound and the cosine are
#: summed in different term orders and the cosine divides by norms that are
#: only ≈ 1.0, so the two can disagree by a few ulps (~1e-14 relative);
#: 1e-9 keeps the bound strictly conservative with five orders of magnitude
#: of margin while pruning essentially nothing less.
_BOUND_SLACK = 1e-9


@dataclass
class SeedScoringStatistics:
    """Observability counters of one :meth:`DuplicateSeeder.find_seeds` call.

    ``candidate_count`` counts the posting-sharing pairs (pairs with at least
    one common term — the pairs the full scan would score); ``scored_count``
    counts the cosines actually computed.  With pruning enabled the gap is
    the work the upper-bound filter saved; without it the two are equal.
    """

    candidate_count: int = 0
    scored_count: int = 0

    @property
    def pruned_count(self) -> int:
        """Candidates skipped because their upper bound was below the floor."""
        return self.candidate_count - self.scored_count

    @property
    def scored_fraction(self) -> float:
        """Fraction of posting-sharing candidates whose cosine was computed."""
        if self.candidate_count == 0:
            return 1.0
        return self.scored_count / self.candidate_count

    def as_dict(self) -> Dict[str, float]:
        return {
            "seed_candidates": self.candidate_count,
            "seed_cosines": self.scored_count,
            "seed_pruned": self.pruned_count,
            "seed_scored_fraction": self.scored_fraction,
        }


class DuplicateSeeder:
    """Finds the top-k most similar cross-table tuple pairs by whole-tuple TF-IDF.

    Args:
        max_seeds: how many seed pairs to return (the k of top-k).
        min_similarity: pairs below this cosine similarity are never returned,
            even if fewer than *max_seeds* pairs qualify.
        max_tuples_per_relation: optional cap; larger relations are sampled by
            taking every n-th tuple, keeping the seeding cost bounded
            (the efficiency point the DUMAS paper makes).
        prune: skip cosines for candidates whose per-term max-weight upper
            bound is provably below the current top-k floor (and below
            *min_similarity*).  Exact — the returned seeds are identical to
            the full scan (see ``docs/matching.md`` for the bound); disable
            only to measure, or to reproduce, the unpruned scan.

    Returned seeds are ordered by the documented, stable sort
    ``(similarity desc, left_index asc, right_index asc)``; ties at the
    ``max_seeds`` boundary are broken the same way, so equal-similarity seeds
    can never reorder (or swap in and out of the top-k) between runs.
    """

    def __init__(
        self,
        max_seeds: int = 10,
        min_similarity: float = 0.25,
        max_tuples_per_relation: Optional[int] = 500,
        prune: bool = True,
    ):
        if max_seeds < 1:
            raise ValueError("max_seeds must be at least 1")
        self.max_seeds = max_seeds
        self.min_similarity = min_similarity
        self.max_tuples_per_relation = max_tuples_per_relation
        self.prune = prune
        #: Optional hook consulted before tokenising a relation; the
        #: prepared-source layer installs one that serves per-source
        #: statistics built at registration time.
        self.statistics_provider: Optional[SeedStatisticsProvider] = None
        #: Counters of the most recent :meth:`find_seeds` call.
        self.last_scoring: Optional[SeedScoringStatistics] = None
        #: Optional listener invoked with the counters after each call
        #: (the session layer accumulates these across source pairs).
        self.scoring_listener: Optional[Callable[[SeedScoringStatistics], None]] = None
        #: Optional intra-scoring progress hook ``(phase, done, total)``;
        #: called with phase ``"seeds_scored"`` after each left tuple's
        #: candidates are processed.
        self.progress_callback: Optional[Callable[[str, int, int], None]] = None

    def statistics_for(self, relation: Relation) -> SeedStatistics:
        """Seeding statistics for *relation* — prebuilt when available."""
        if self.statistics_provider is not None:
            prepared = self.statistics_provider(relation, self.max_tuples_per_relation)
            if (
                prepared is not None
                and prepared.row_count == len(relation)
                and prepared.sample_limit == self.max_tuples_per_relation
            ):
                return prepared
        return compute_seed_statistics(relation, self.max_tuples_per_relation)

    def find_seeds(self, left: Relation, right: Relation) -> List[SeedPair]:
        """Return the top seed pairs between *left* and *right*, best first."""
        left_stats = self.statistics_for(left)
        right_stats = self.statistics_for(right)

        # Cross-source IDF: fitting one vectorizer on both corpora is exactly
        # adding the two document-frequency tables over the summed corpus size.
        document_count = left_stats.document_count + right_stats.document_count
        document_frequency: Dict[str, int] = dict(left_stats.document_frequency)
        for term, frequency in right_stats.document_frequency.items():
            document_frequency[term] = document_frequency.get(term, 0) + frequency
        idf = {
            term: TfIdfVectorizer.idf_weight(frequency, document_count)
            for term, frequency in document_frequency.items()
        }
        left_vectors = [_vectorize(counts, idf) for counts in left_stats.documents]
        right_vectors = [_vectorize(counts, idf) for counts in right_stats.documents]

        # Invert the right-hand vectors so only pairs sharing at least one
        # term are scored (sparse dot products), instead of all |L| x |R|.
        # The per-term maximum weight over the right vectors feeds the
        # pruning upper bound.
        postings: dict = {}
        max_weight: Dict[str, float] = {}
        for position, vector in enumerate(right_vectors):
            for term, weight in vector.items():
                postings.setdefault(term, set()).add(position)
                if weight > max_weight.get(term, 0.0):
                    max_weight[term] = weight

        scoring = SeedScoringStatistics()
        self.last_scoring = scoring

        # Min-heap of the current top-k under the key (similarity asc,
        # left desc, right desc): the root is the *worst* entry — lowest
        # similarity, and among equals the largest positions — so smaller
        # indices win ties at the boundary, deterministically.
        heap: List[Tuple[float, int, int]] = []
        total_left = len(left_vectors)
        for left_position, left_vector in enumerate(left_vectors):
            if self.prune:
                self._score_pruned(left_position, left_vector, right_vectors,
                                   postings, max_weight, heap, scoring)
            else:
                candidates = set()
                for term in left_vector:
                    candidates.update(postings.get(term, ()))
                scoring.candidate_count += len(candidates)
                scoring.scored_count += len(candidates)
                for right_position in candidates:
                    similarity = cosine_similarity(
                        left_vector, right_vectors[right_position]
                    )
                    if similarity < self.min_similarity:
                        continue
                    entry = (similarity, -left_position, -right_position)
                    if len(heap) < self.max_seeds:
                        heapq.heappush(heap, entry)
                    elif entry > heap[0]:
                        heapq.heapreplace(heap, entry)
            if self.progress_callback is not None:
                self.progress_callback("seeds_scored", left_position + 1, total_left)
        if self.scoring_listener is not None:
            self.scoring_listener(scoring)

        pairs = [
            SeedPair(
                left_index=left_stats.indices[-negated_left],
                right_index=right_stats.indices[-negated_right],
                similarity=similarity,
            )
            for similarity, negated_left, negated_right in heap
        ]
        pairs.sort(key=lambda pair: (-pair.similarity, pair.left_index, pair.right_index))
        return pairs

    def _score_pruned(
        self,
        left_position: int,
        left_vector: Dict[str, float],
        right_vectors: List[Dict[str, float]],
        postings: Dict[str, set],
        max_weight: Dict[str, float],
        heap: List[Tuple[float, int, int]],
        scoring: SeedScoringStatistics,
    ) -> None:
        """Score one left tuple's candidates under max-weight upper bounds.

        For every candidate ``r`` sharing at least one term with the left
        vector, accumulate ``bound(r) = Σ_t L[t] · max_weight[t]`` over the
        left vector's terms whose postings contain ``r``.  Both vectors are
        L2-normalised, so ``cos(L, R) = Σ_{t ∈ L∩R} L[t]·R[t] ≤ bound(r)``.
        Candidates are then scored best-bound-first — the heap floor rises
        as early as possible — and once a bound falls strictly below the
        floor, every remaining candidate is provably outside the top-k and
        below ``min_similarity``, so the scan stops.

        Strict ``<`` against the floor is load-bearing twice: a candidate
        whose similarity *equals* the heap root's can still enter on the
        index tiebreak, and a similarity equal to ``min_similarity`` is kept
        by the full scan (which only skips ``< min_similarity``).  The full
        scan and this path therefore select the same top-k — the top-k under
        the total order ``(similarity, -left, -right)`` is independent of
        processing order.
        """
        bounds: Dict[int, float] = {}
        for term, weight in left_vector.items():
            term_max = max_weight.get(term)
            if term_max is None:
                continue
            contribution = weight * term_max
            for right_position in postings[term]:
                bounds[right_position] = bounds.get(right_position, 0.0) + contribution
        scoring.candidate_count += len(bounds)
        for right_position, bound in sorted(
            bounds.items(), key=lambda item: (-item[1], item[0])
        ):
            floor = (
                self.min_similarity
                if len(heap) < self.max_seeds
                else max(self.min_similarity, heap[0][0])
            )
            if bound * (1.0 + _BOUND_SLACK) < floor:
                # Bounds are descending and the floor only rises: every
                # remaining candidate is below it too.
                break
            scoring.scored_count += 1
            similarity = cosine_similarity(left_vector, right_vectors[right_position])
            if similarity < self.min_similarity:
                continue
            entry = (similarity, -left_position, -right_position)
            if len(heap) < self.max_seeds:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

    def _sample_indices(self, size: int) -> List[int]:
        """Backwards-compatible alias of :func:`sample_indices`."""
        return sample_indices(size, self.max_tuples_per_relation)


def _vectorize(counts: Dict[str, int], idf: Dict[str, float]) -> Dict[str, float]:
    """L2-normalised TF-IDF vector from raw term counts.

    Mirrors :meth:`TfIdfVectorizer.transform` operation for operation
    (including float summation order over the first-occurrence term order),
    so prepared statistics score identically to the single-pass model.
    """
    if not counts:
        return {}
    vector = {
        term: (1.0 + math.log(frequency)) * idf[term] for term, frequency in counts.items()
    }
    norm = math.sqrt(sum(weight * weight for weight in vector.values()))
    if norm == 0.0:
        return {}
    return {term: weight / norm for term, weight in vector.items()}
