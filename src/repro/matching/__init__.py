"""Instance-based (duplicate-driven) schema matching — the DUMAS component.

The first fully automated HumMer phase (paper §2.2): given heterogeneous
tables that are assumed to contain some duplicates,

1. :mod:`repro.matching.duplicate_seed` treats each tuple as one string and
   ranks cross-table tuple pairs by TF-IDF cosine similarity; the top pairs
   are the *seed duplicates*.
2. :mod:`repro.matching.field_matrix` compares each seed duplicate field by
   field with SoftTFIDF, producing one attribute-similarity matrix per seed;
   the matrices are averaged.
3. :mod:`repro.matching.assignment` computes a maximum-weight bipartite
   matching over the averaged matrix (Hungarian algorithm, implemented from
   scratch), yielding 1:1 attribute correspondences; correspondences below a
   threshold are pruned.
4. :mod:`repro.matching.transform` renames matched attributes to the
   preferred schema, adds the ``sourceID`` column and computes the full outer
   union — the input expected by duplicate detection.

:class:`DumasMatcher` ties steps 1–3 together; :class:`MultiMatcher` extends
the pairwise algorithm to more than two relations by matching every relation
against the preferred (first) one, as the paper's demo does.
"""

from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.matching.duplicate_seed import DuplicateSeeder, SeedPair
from repro.matching.field_matrix import FieldSimilarityMatrix, build_field_matrix, average_matrices
from repro.matching.assignment import hungarian_max_weight, maximum_weight_matching
from repro.matching.dumas import DumasMatcher, MatchingResult
from repro.matching.multi import MultiMatcher, MultiMatchingResult
from repro.matching.transform import SOURCE_ID_COLUMN, apply_correspondences, transform_sources

__all__ = [
    "Correspondence",
    "CorrespondenceSet",
    "DuplicateSeeder",
    "SeedPair",
    "FieldSimilarityMatrix",
    "build_field_matrix",
    "average_matrices",
    "hungarian_max_weight",
    "maximum_weight_matching",
    "DumasMatcher",
    "MatchingResult",
    "MultiMatcher",
    "MultiMatchingResult",
    "SOURCE_ID_COLUMN",
    "apply_correspondences",
    "transform_sources",
]
