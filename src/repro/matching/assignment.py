"""Maximum-weight bipartite matching (Hungarian algorithm, from scratch).

DUMAS derives 1:1 attribute correspondences by computing the maximum-weight
matching over the averaged field-similarity matrix.  We implement the
Hungarian (Kuhn-Munkres) algorithm directly rather than relying on an
external solver, as required for a self-contained reproduction; a small
wrapper exposes the result as index pairs restricted to strictly positive
weights.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["hungarian_max_weight", "maximum_weight_matching"]


def _hungarian_min_cost(cost: np.ndarray) -> List[Tuple[int, int]]:
    """Solve the square assignment problem minimising total cost.

    Implementation of the O(n^3) Hungarian algorithm using potentials
    (Jonker-style shortest augmenting paths).  Returns a full assignment of
    rows to columns.
    """
    size = cost.shape[0]
    # potentials for rows (u) and columns (v); way[j] remembers the previous
    # column on the augmenting path; matching[j] is the row assigned to column j.
    u = np.zeros(size + 1)
    v = np.zeros(size + 1)
    matching = np.full(size + 1, -1, dtype=int)
    way = np.zeros(size + 1, dtype=int)

    for row in range(size):
        matching[size] = row
        j0 = size
        minv = np.full(size + 1, np.inf)
        used = np.zeros(size + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = matching[j0]
            delta = np.inf
            j1 = -1
            for j in range(size):
                if used[j]:
                    continue
                current = cost[i0, j] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(size + 1):
                if used[j]:
                    u[matching[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if matching[j0] == -1:
                break
        # augment along the path
        while True:
            j1 = way[j0]
            matching[j0] = matching[j1]
            j0 = j1
            if j0 == size:
                break

    return [(int(matching[j]), j) for j in range(size) if matching[j] != -1]


def hungarian_max_weight(weights: np.ndarray) -> List[Tuple[int, int]]:
    """Maximum-weight assignment on a (possibly rectangular) weight matrix.

    The matrix is padded to square with zeros; the returned pairs are
    restricted to real rows/columns.  Pairs with zero or negative weight are
    kept here (callers prune); use :func:`maximum_weight_matching` to drop
    them.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        return []
    rows, cols = weights.shape
    size = max(rows, cols)
    padded = np.zeros((size, size))
    padded[:rows, :cols] = weights
    # maximise weight == minimise (max - weight)
    cost = padded.max() - padded
    assignment = _hungarian_min_cost(cost)
    return [(i, j) for i, j in assignment if i < rows and j < cols]


def maximum_weight_matching(
    weights: np.ndarray, min_weight: float = 0.0
) -> List[Tuple[int, int, float]]:
    """1:1 matching maximising total weight, dropping pairs at or below *min_weight*.

    Returns ``(row, column, weight)`` triples sorted by descending weight.
    """
    weights = np.asarray(weights, dtype=float)
    triples = [
        (i, j, float(weights[i, j]))
        for i, j in hungarian_max_weight(weights)
        if weights[i, j] > min_weight
    ]
    triples.sort(key=lambda triple: triple[2], reverse=True)
    return triples
