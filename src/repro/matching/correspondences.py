"""Attribute correspondences between heterogeneous schemata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Correspondence", "CorrespondenceSet"]


@dataclass(frozen=True)
class Correspondence:
    """A 1:1 correspondence between an attribute of two relations.

    Attributes:
        left_relation / left_attribute: the preferred side.
        right_relation / right_attribute: the non-preferred side (will be
            renamed to the preferred attribute name during transformation).
        score: similarity score in ``[0, 1]`` that produced the match.
        origin: ``"instance"`` (derived from duplicates), ``"name"``
            (label-based baseline) or ``"manual"`` (user adjustment).
    """

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str
    score: float = 1.0
    origin: str = "instance"

    def as_pair(self) -> Tuple[str, str]:
        """The attribute pair ``(left_attribute, right_attribute)``."""
        return (self.left_attribute, self.right_attribute)

    def reversed(self) -> "Correspondence":
        """The same correspondence seen from the other side."""
        return Correspondence(
            left_relation=self.right_relation,
            left_attribute=self.right_attribute,
            right_relation=self.left_relation,
            right_attribute=self.left_attribute,
            score=self.score,
            origin=self.origin,
        )

    def __str__(self) -> str:
        return (
            f"{self.left_relation}.{self.left_attribute} ≈ "
            f"{self.right_relation}.{self.right_attribute} ({self.score:.2f})"
        )


class CorrespondenceSet:
    """A collection of correspondences with the user-adjustment operations
    the demo exposes (add missing, delete false)."""

    def __init__(self, correspondences: Iterable[Correspondence] = ()):
        self._items: List[Correspondence] = list(correspondences)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __repr__(self) -> str:
        return f"CorrespondenceSet({len(self._items)} correspondences)"

    @property
    def items(self) -> List[Correspondence]:
        """The correspondences as a list (copy)."""
        return list(self._items)

    def add(self, correspondence: Correspondence) -> None:
        """Add a correspondence (the demo's "manually add missing")."""
        self._items.append(correspondence)

    def remove(self, left_attribute: str, right_attribute: str) -> bool:
        """Remove the correspondence between the two attributes; returns whether one was removed."""
        before = len(self._items)
        self._items = [
            c
            for c in self._items
            if not (
                c.left_attribute.lower() == left_attribute.lower()
                and c.right_attribute.lower() == right_attribute.lower()
            )
        ]
        return len(self._items) < before

    def filtered(self, threshold: float) -> "CorrespondenceSet":
        """Correspondences with score at or above *threshold*."""
        return CorrespondenceSet([c for c in self._items if c.score >= threshold])

    def for_relation(self, relation_name: str) -> "CorrespondenceSet":
        """Correspondences whose non-preferred side is *relation_name*."""
        return CorrespondenceSet(
            [c for c in self._items if c.right_relation.lower() == relation_name.lower()]
        )

    def rename_mapping(self, relation_name: str) -> Dict[str, str]:
        """Mapping right-attribute → left-attribute for one non-preferred relation.

        This is the mapping the transformation step feeds to the Rename
        operator.  Identity pairs are skipped.
        """
        mapping = {}
        for correspondence in self.for_relation(relation_name):
            if correspondence.right_attribute.lower() != correspondence.left_attribute.lower():
                mapping[correspondence.right_attribute] = correspondence.left_attribute
        return mapping

    def pairs(self) -> List[Tuple[str, str]]:
        """All ``(left_attribute, right_attribute)`` pairs."""
        return [c.as_pair() for c in self._items]

    def best_for(self, left_attribute: str) -> Optional[Correspondence]:
        """Highest-scoring correspondence for a preferred-side attribute."""
        candidates = [
            c for c in self._items if c.left_attribute.lower() == left_attribute.lower()
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c.score)

    def merge(self, other: "CorrespondenceSet") -> "CorrespondenceSet":
        """Union of two correspondence sets (no dedup beyond exact equality)."""
        merged = list(self._items)
        for correspondence in other:
            if correspondence not in merged:
                merged.append(correspondence)
        return CorrespondenceSet(merged)
