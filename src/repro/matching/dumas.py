"""The DUMAS schema matcher: seed duplicates → field matrices → matching.

This is the pairwise algorithm of Bilke & Naumann (ICDE 2005) as summarised
in the HumMer paper §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.exceptions import InsufficientDuplicatesError
from repro.matching.assignment import maximum_weight_matching
from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.matching.duplicate_seed import DuplicateSeeder, SeedPair
from repro.matching.field_matrix import (
    FieldSimilarityMatrix,
    average_matrices,
    build_field_matrix,
)
from repro.similarity.soft_tfidf import SoftTfIdfSimilarity

__all__ = ["MatchingResult", "DumasMatcher"]


@dataclass
class MatchingResult:
    """Everything the matching phase produces (for inspection/adjustment in the demo).

    Attributes:
        correspondences: the pruned 1:1 correspondences.
        seeds: the seed duplicate pairs that drove the matching.
        matrix: the averaged field-similarity matrix.
    """

    correspondences: CorrespondenceSet
    seeds: List[SeedPair] = field(default_factory=list)
    matrix: Optional[FieldSimilarityMatrix] = None

    def __repr__(self) -> str:
        return (
            f"MatchingResult({len(self.correspondences)} correspondences "
            f"from {len(self.seeds)} seed duplicates)"
        )


class DumasMatcher:
    """Pairwise instance-based schema matcher.

    Args:
        max_seeds: number of seed duplicates to use (more seeds → more robust
            correspondences, more comparisons).
        min_seed_similarity: whole-tuple TF-IDF threshold below which a pair
            is not trusted as a seed.
        correspondence_threshold: correspondences with an averaged field
            similarity below this are pruned (paper: "correspondences with a
            similarity score below a given threshold are pruned").
        field_measure: optional override for the field comparison measure
            (default: SoftTFIDF fitted on both relations' values).
    """

    def __init__(
        self,
        max_seeds: int = 10,
        min_seed_similarity: float = 0.25,
        correspondence_threshold: float = 0.35,
        field_measure: Optional[Callable[[str, str], float]] = None,
    ):
        self.max_seeds = max_seeds
        self.min_seed_similarity = min_seed_similarity
        self.correspondence_threshold = correspondence_threshold
        self.field_measure = field_measure
        self.seeder = DuplicateSeeder(
            max_seeds=max_seeds, min_similarity=min_seed_similarity
        )

    def match(self, left: Relation, right: Relation) -> MatchingResult:
        """Derive attribute correspondences between *left* (preferred) and *right*.

        Raises:
            InsufficientDuplicatesError: if no seed duplicates at all could be
                found — the caller may fall back to a name-based matcher or
                ask the user.
        """
        seeds = self.seeder.find_seeds(left, right)
        if not seeds:
            raise InsufficientDuplicatesError(
                f"no overlapping tuples found between {left.name or 'left'!r} and "
                f"{right.name or 'right'!r}; instance-based matching needs shared objects"
            )
        measure = self.field_measure or self._default_measure(left, right)
        matrices = [build_field_matrix(left, right, seed, measure=measure) for seed in seeds]
        averaged = average_matrices(matrices)
        triples = maximum_weight_matching(
            averaged.scores, min_weight=self.correspondence_threshold
        )
        correspondences = CorrespondenceSet(
            Correspondence(
                left_relation=left.name or "left",
                left_attribute=averaged.left_attributes[i],
                right_relation=right.name or "right",
                right_attribute=averaged.right_attributes[j],
                score=score,
                origin="instance",
            )
            for i, j, score in triples
        )
        return MatchingResult(correspondences=correspondences, seeds=seeds, matrix=averaged)

    @staticmethod
    def _default_measure(left: Relation, right: Relation) -> Callable[[str, str], float]:
        corpus: List[str] = []
        for relation in (left, right):
            for values in relation.rows:
                corpus.extend(str(value) for value in values if not is_null(value))
        return SoftTfIdfSimilarity(corpus=corpus).compare
