"""The DUMAS schema matcher: seed duplicates → field matrices → matching.

This is the pairwise algorithm of Bilke & Naumann (ICDE 2005) as summarised
in the HumMer paper §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.relation import Relation
from repro.engine.types import is_null
from repro.exceptions import InsufficientDuplicatesError
from repro.matching.assignment import maximum_weight_matching
from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.matching.duplicate_seed import DuplicateSeeder, SeedPair
from repro.matching.field_matrix import (
    FieldSimilarityMatrix,
    average_matrices,
    build_field_matrix,
)
from repro.similarity.soft_tfidf import SoftTfIdfSimilarity

__all__ = ["MatchingResult", "DumasMatcher", "FieldCorpusProvider"]

#: Resolver the prepared-source layer installs: given the two relations being
#: matched, return the merged field-corpus statistics — ``(document_frequency,
#: document_count)`` over every non-null cell string of both relations — or
#: ``None`` (→ the matcher builds the corpus cold from cell values).
FieldCorpusProvider = Callable[
    ["Relation", "Relation"], Optional[Tuple[Dict[str, int], int]]
]


@dataclass
class MatchingResult:
    """Everything the matching phase produces (for inspection/adjustment in the demo).

    Attributes:
        correspondences: the pruned 1:1 correspondences.
        seeds: the seed duplicate pairs that drove the matching.
        matrix: the averaged field-similarity matrix.
    """

    correspondences: CorrespondenceSet
    seeds: List[SeedPair] = field(default_factory=list)
    matrix: Optional[FieldSimilarityMatrix] = None

    def __repr__(self) -> str:
        return (
            f"MatchingResult({len(self.correspondences)} correspondences "
            f"from {len(self.seeds)} seed duplicates)"
        )


class DumasMatcher:
    """Pairwise instance-based schema matcher.

    Args:
        max_seeds: number of seed duplicates to use (more seeds → more robust
            correspondences, more comparisons).
        min_seed_similarity: whole-tuple TF-IDF threshold below which a pair
            is not trusted as a seed.
        correspondence_threshold: correspondences with an averaged field
            similarity below this are pruned (paper: "correspondences with a
            similarity score below a given threshold are pruned").
        field_measure: optional override for the field comparison measure
            (default: SoftTFIDF fitted on both relations' values).
    """

    def __init__(
        self,
        max_seeds: int = 10,
        min_seed_similarity: float = 0.25,
        correspondence_threshold: float = 0.35,
        field_measure: Optional[Callable[[str, str], float]] = None,
    ):
        self.max_seeds = max_seeds
        self.min_seed_similarity = min_seed_similarity
        self.correspondence_threshold = correspondence_threshold
        self.field_measure = field_measure
        self.seeder = DuplicateSeeder(
            max_seeds=max_seeds, min_similarity=min_seed_similarity
        )
        #: Optional hook consulted before re-tokenising both relations for
        #: the default SoftTFIDF field corpus; the prepared-source layer
        #: installs one that merges per-source counts built at registration
        #: time (see :class:`~repro.prepare.artifacts.FieldCorpusArtifact`).
        self.field_corpus_provider: Optional[FieldCorpusProvider] = None
        #: Optional intra-match progress hook ``(phase, done, total)``;
        #: called with phase ``"field_matrices"`` after each seed's field
        #: similarity matrix is built.  The session layer forwards these as
        #: :class:`~repro.core.session.ProgressEvent`\\ s.
        self.progress_callback: Optional[Callable[[str, int, int], None]] = None

    def match(self, left: Relation, right: Relation) -> MatchingResult:
        """Derive attribute correspondences between *left* (preferred) and *right*.

        Raises:
            InsufficientDuplicatesError: if no seed duplicates at all could be
                found — the caller may fall back to a name-based matcher or
                ask the user.
        """
        seeds = self.seeder.find_seeds(left, right)
        if not seeds:
            raise InsufficientDuplicatesError(
                f"no overlapping tuples found between {left.name or 'left'!r} and "
                f"{right.name or 'right'!r}; instance-based matching needs shared objects"
            )
        measure = self.field_measure or self._default_measure(left, right)
        matrices = []
        for built, seed in enumerate(seeds, start=1):
            matrices.append(build_field_matrix(left, right, seed, measure=measure))
            if self.progress_callback is not None:
                self.progress_callback("field_matrices", built, len(seeds))
        averaged = average_matrices(matrices)
        triples = maximum_weight_matching(
            averaged.scores, min_weight=self.correspondence_threshold
        )
        correspondences = CorrespondenceSet(
            Correspondence(
                left_relation=left.name or "left",
                left_attribute=averaged.left_attributes[i],
                right_relation=right.name or "right",
                right_attribute=averaged.right_attributes[j],
                score=score,
                origin="instance",
            )
            for i, j, score in triples
        )
        return MatchingResult(correspondences=correspondences, seeds=seeds, matrix=averaged)

    def _default_measure(
        self, left: Relation, right: Relation
    ) -> Callable[[str, str], float]:
        """SoftTFIDF fitted on both relations' non-null cell strings.

        With a :attr:`field_corpus_provider` the IDF model is reconstructed
        from merged per-source document frequencies (bit-identical to the
        fresh fit — counts add and per-term IDF is a pure function of them)
        instead of re-tokenising every cell of both relations per source
        pair.
        """
        if self.field_corpus_provider is not None:
            merged = self.field_corpus_provider(left, right)
            if merged is not None:
                document_frequency, document_count = merged
                return SoftTfIdfSimilarity().fit_counts(
                    document_frequency, document_count
                )
        corpus: List[str] = []
        for relation in (left, right):
            for values in relation.rows:
                corpus.extend(str(value) for value in values if not is_null(value))
        return SoftTfIdfSimilarity(corpus=corpus)
