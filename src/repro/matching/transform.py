"""Data transformation after schema matching.

"Without loss of generality, we assume that one schema is the preferred
schema, which determines the names of attributes that semantically appear in
multiple sources.  The attributes in the non-preferred schema that
participate in a correspondence are renamed accordingly.  All tables receive
an additional sourceID attribute, which is required in later stages.
Finally, the full outer union of all tables is computed." (paper §2.2)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engine.operators.union import outer_union
from repro.engine.relation import Relation
from repro.engine.schema import Column
from repro.engine.types import DataType
from repro.matching.correspondences import CorrespondenceSet

__all__ = ["SOURCE_ID_COLUMN", "apply_correspondences", "add_source_id", "transform_sources"]

#: Name of the provenance column added to every table before the outer union.
SOURCE_ID_COLUMN = "sourceID"


def apply_correspondences(
    relation: Relation, correspondences: CorrespondenceSet, preferred_name: str
) -> Relation:
    """Rename the attributes of a non-preferred relation to the preferred names."""
    if relation.name and relation.name == preferred_name:
        return relation
    mapping = correspondences.rename_mapping(relation.name)
    # Never rename onto a column the relation already has under another name
    # (would collide); such cases are left to the outer union's padding.
    safe_mapping: Dict[str, str] = {}
    taken = {name.lower() for name in relation.schema.names}
    for old, new in mapping.items():
        if new.lower() in taken and new.lower() != old.lower():
            continue
        safe_mapping[old] = new
    if not safe_mapping:
        return relation
    return relation.rename_columns(safe_mapping)


def add_source_id(relation: Relation, alias: Optional[str] = None) -> Relation:
    """Append the ``sourceID`` column holding the source alias for every tuple."""
    if relation.schema.has_column(SOURCE_ID_COLUMN):
        return relation
    value = alias if alias is not None else (relation.name or "unknown")
    return relation.with_column(Column(SOURCE_ID_COLUMN, DataType.STRING), value)


def transform_sources(
    relations: Sequence[Relation],
    correspondences: CorrespondenceSet,
    preferred_name: Optional[str] = None,
) -> Relation:
    """Rename, tag with sourceID and outer-union all source relations.

    The result is the single table handed to duplicate detection.
    """
    if not relations:
        raise ValueError("need at least one relation to transform")
    preferred = preferred_name or relations[0].name
    transformed: List[Relation] = []
    for relation in relations:
        renamed = apply_correspondences(relation, correspondences, preferred)
        transformed.append(add_source_id(renamed, relation.name))
    return outer_union(transformed, name="fused_input")
