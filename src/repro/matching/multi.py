"""Multi-relation schema matching.

"Since data fusion can take place for more than 2 relations, HumMer is able
to display correspondences simultaneously over many relations." (paper §2.2)
The demo favours the first source mentioned in the query as the preferred
schema; every other relation is matched pairwise against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.relation import Relation
from repro.exceptions import InsufficientDuplicatesError
from repro.matching.correspondences import CorrespondenceSet
from repro.matching.dumas import DumasMatcher, MatchingResult

__all__ = ["MultiMatchingResult", "MultiMatcher"]


@dataclass
class MultiMatchingResult:
    """Correspondences of every non-preferred relation against the preferred one."""

    preferred: str
    correspondences: CorrespondenceSet
    per_relation: Dict[str, MatchingResult] = field(default_factory=dict)
    failed_relations: List[str] = field(default_factory=list)

    def rename_mapping(self, relation_name: str) -> Dict[str, str]:
        """Old → new attribute mapping for one non-preferred relation."""
        return self.correspondences.rename_mapping(relation_name)

    def __repr__(self) -> str:
        return (
            f"MultiMatchingResult(preferred={self.preferred!r}, "
            f"{len(self.correspondences)} correspondences, "
            f"{len(self.failed_relations)} unmatched relations)"
        )


class MultiMatcher:
    """Match several relations against the first (preferred) one.

    Relations for which instance-based matching fails (no shared tuples) are
    recorded in ``failed_relations`` and optionally matched by a fallback
    matcher (e.g. the label-based baseline) instead of aborting the pipeline.
    """

    def __init__(self, matcher: Optional[DumasMatcher] = None, fallback=None):
        self.matcher = matcher or DumasMatcher()
        self.fallback = fallback

    def match(self, relations: Sequence[Relation]) -> MultiMatchingResult:
        """Match every relation after the first one against the first one."""
        if not relations:
            raise ValueError("need at least one relation")
        preferred = relations[0]
        combined = CorrespondenceSet()
        per_relation: Dict[str, MatchingResult] = {}
        failed: List[str] = []
        for other in relations[1:]:
            try:
                result = self.matcher.match(preferred, other)
            except InsufficientDuplicatesError:
                result = None
            if result is None or len(result.correspondences) == 0:
                if self.fallback is not None:
                    fallback_set = self.fallback.match(preferred, other)
                    combined = combined.merge(fallback_set)
                    per_relation[other.name] = MatchingResult(correspondences=fallback_set)
                    continue
                failed.append(other.name or "unnamed")
                continue
            per_relation[other.name] = result
            combined = combined.merge(result.correspondences)
        return MultiMatchingResult(
            preferred=preferred.name or "preferred",
            correspondences=combined,
            per_relation=per_relation,
            failed_relations=failed,
        )
