"""Exact-match duplicate detection baseline.

Tuples are duplicates only if they agree exactly (after whitespace/case
normalisation) on a chosen key — what DISTINCT or a merge on a natural key
gives you.  Misspellings, abbreviations and formatting differences all break
it, which is exactly the gap similarity-based detection closes in E2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dedup.detector import OBJECT_ID_COLUMN, SOURCE_COLUMN
from repro.dedup.graphcluster import ClusteringSpec, resolve_clustering
from repro.engine.relation import Relation
from repro.engine.schema import Column
from repro.engine.types import DataType, is_null
from repro.similarity.tokenize import normalize_text

__all__ = ["ExactDuplicateDetector"]


class ExactDuplicateDetector:
    """Groups tuples by exact (normalised) equality of the key columns.

    Args:
        key_columns: the natural-key columns compared for exact equality.
        normalize: apply whitespace/case/accent normalisation first.
        clustering: how matching pairs become groups — any
            :data:`~repro.dedup.graphcluster.ClusteringSpec`; the default
            ``None`` keeps the transitive-closure baseline.  Exact matches
            carry no similarity gradient, so every edge has weight 1.0.
    """

    def __init__(
        self,
        key_columns: Sequence[str],
        normalize: bool = True,
        clustering: ClusteringSpec = None,
    ):
        if not key_columns:
            raise ValueError("exact duplicate detection needs at least one key column")
        self.key_columns = list(key_columns)
        self.normalize = normalize
        self.clustering = resolve_clustering(clustering)

    def assign_clusters(self, relation: Relation) -> List[int]:
        """Cluster id per row (rows with a null key are singletons)."""
        positions = relation.schema.positions(self.key_columns)
        pairs = []
        index_by_key = {}
        for row_index, values in enumerate(relation.rows):
            key_parts = []
            has_null = False
            for position in positions:
                value = values[position]
                if is_null(value):
                    has_null = True
                    break
                key_parts.append(normalize_text(value) if self.normalize else str(value))
            if has_null:
                continue
            key = tuple(key_parts)
            if key in index_by_key:
                pairs.append((index_by_key[key], row_index))
            else:
                index_by_key[key] = row_index
        edges = [(left, right, 1.0) for left, right in pairs]
        sources = (
            relation.column(SOURCE_COLUMN)
            if relation.schema.has_column(SOURCE_COLUMN)
            else None
        )
        return self.clustering.cluster(len(relation), edges, sources).assignment

    def detect(self, relation: Relation) -> Relation:
        """Return *relation* with the baseline's objectID column appended."""
        assignment = self.assign_clusters(relation)
        return relation.with_column(Column(OBJECT_ID_COLUMN, DataType.INTEGER), assignment)
