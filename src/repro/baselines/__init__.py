"""Baselines the experiments compare HumMer against.

* :class:`NameBasedMatcher` — schema matching from attribute labels only
  (what a system without instance-based matching can do); baseline of E1.
* :func:`naive_union` — plain outer union, no duplicate handling; the
  "maximally complete but maximally redundant" baseline of E3.
* :class:`ExactDuplicateDetector` — duplicates are only exact matches on a
  key; baseline of E2.
* :func:`groupby_fusion` — SQL GROUP BY on a natural key with standard
  aggregates, the closest a vanilla DBMS gets to fusion; baseline of E3.
"""

from repro.baselines.name_matcher import NameBasedMatcher
from repro.baselines.naive_union import naive_union
from repro.baselines.exact_dedup import ExactDuplicateDetector
from repro.baselines.groupby_fusion import groupby_fusion

__all__ = [
    "NameBasedMatcher",
    "naive_union",
    "ExactDuplicateDetector",
    "groupby_fusion",
]
