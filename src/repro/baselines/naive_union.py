"""Plain outer union baseline (no duplicate handling, no conflict resolution)."""

from __future__ import annotations

from typing import Sequence

from repro.engine.operators.union import outer_union
from repro.engine.relation import Relation
from repro.matching.correspondences import CorrespondenceSet
from repro.matching.transform import transform_sources

__all__ = ["naive_union"]


def naive_union(
    relations: Sequence[Relation],
    correspondences: CorrespondenceSet = None,
) -> Relation:
    """Outer-union the sources without fusing anything.

    With *correspondences* the schemata are aligned first (so the comparison
    against real fusion isolates the effect of duplicate handling); without,
    even the schemata stay unaligned and the result is as redundant as it
    gets.
    """
    if correspondences is not None:
        return transform_sources(relations, correspondences)
    return outer_union(list(relations), name="naive_union")
