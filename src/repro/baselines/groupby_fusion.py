"""GROUP BY fusion baseline.

The closest a plain SQL system gets to data fusion: group on a natural key
and collapse each group with a standard aggregate per column (MIN by
default).  Compared with Fuse By in experiment E3 this is less complete
(tuples whose key disagrees slightly never merge; a GROUP BY on a dirty key
leaves duplicates) and less correct (the aggregate ignores source preference,
recency and every other piece of query context).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.engine.operators.base import RelationSource
from repro.engine.operators.groupby import AggregateSpec, GroupBy
from repro.engine.relation import Relation

__all__ = ["groupby_fusion"]


def groupby_fusion(
    relation: Relation,
    key_columns: Sequence[str],
    aggregate: str = "min",
    per_column: Optional[Dict[str, str]] = None,
) -> Relation:
    """Collapse *relation* by GROUP BY on *key_columns* using standard aggregates.

    Args:
        relation: the (outer-unioned) input table.
        key_columns: the grouping key.
        aggregate: default aggregate applied to every non-key column.
        per_column: aggregate overrides per column name.
    """
    overrides = {name.lower(): agg for name, agg in (per_column or {}).items()}
    key_set = {name.lower() for name in key_columns}
    specs = []
    for column in relation.schema:
        if column.name.lower() in key_set:
            continue
        function = overrides.get(column.name.lower(), aggregate)
        specs.append(AggregateSpec(column.name, function, alias=column.name))
    operator = GroupBy(RelationSource(relation), list(key_columns), specs)
    return operator.execute()
