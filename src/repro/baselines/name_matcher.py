"""Label-based schema matching baseline.

Matches attributes purely by the similarity of their *names* (edit distance
over normalised labels plus a small synonym table), ignoring instances.  This
is the baseline DUMAS-style instance matching is compared against in
experiment E1: it works when labels are descriptive and shared, and fails on
the opaque or absent labels the paper's shopping scenario highlights.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.engine.relation import Relation
from repro.matching.assignment import maximum_weight_matching
from repro.matching.correspondences import Correspondence, CorrespondenceSet
from repro.similarity.levenshtein import levenshtein_similarity
from repro.similarity.tokenize import normalize_text

__all__ = ["NameBasedMatcher"]

#: Common attribute-label synonyms found in practice; both directions apply.
_DEFAULT_SYNONYMS = [
    ("name", "fullname"),
    ("name", "title"),
    ("phone", "telephone"),
    ("zip", "postcode"),
    ("zip", "zipcode"),
    ("price", "cost"),
    ("artist", "interpret"),
    ("birthday", "dob"),
    ("address", "addr"),
    ("email", "mail"),
]


class NameBasedMatcher:
    """Schema matcher using only attribute labels."""

    def __init__(
        self,
        threshold: float = 0.6,
        synonyms: Optional[Iterable[Tuple[str, str]]] = None,
    ):
        self.threshold = threshold
        self._synonyms = set()
        for left, right in (synonyms if synonyms is not None else _DEFAULT_SYNONYMS):
            self._synonyms.add((normalize_text(left), normalize_text(right)))
            self._synonyms.add((normalize_text(right), normalize_text(left)))

    def label_similarity(self, left: str, right: str) -> float:
        """Similarity of two attribute labels in ``[0, 1]``."""
        left_n, right_n = normalize_text(left), normalize_text(right)
        left_n = left_n.replace("_", " ").replace("-", " ")
        right_n = right_n.replace("_", " ").replace("-", " ")
        if left_n == right_n:
            return 1.0
        if (left_n.replace(" ", ""), right_n.replace(" ", "")) in self._synonyms:
            return 0.95
        # substring containment ("cd_title" vs "title")
        compact_left, compact_right = left_n.replace(" ", ""), right_n.replace(" ", "")
        if compact_left and compact_right and (
            compact_left in compact_right or compact_right in compact_left
        ):
            shorter = min(len(compact_left), len(compact_right))
            longer = max(len(compact_left), len(compact_right))
            return max(0.7, shorter / longer)
        return levenshtein_similarity(left_n, right_n, normalize=False)

    def match(self, left: Relation, right: Relation) -> CorrespondenceSet:
        """1:1 correspondences between the attribute labels of two relations."""
        left_names = list(left.schema.names)
        right_names = list(right.schema.names)
        weights = np.zeros((len(left_names), len(right_names)))
        for i, left_name in enumerate(left_names):
            for j, right_name in enumerate(right_names):
                weights[i, j] = self.label_similarity(left_name, right_name)
        triples = maximum_weight_matching(weights, min_weight=self.threshold)
        return CorrespondenceSet(
            Correspondence(
                left_relation=left.name or "left",
                left_attribute=left_names[i],
                right_relation=right.name or "right",
                right_attribute=right_names[j],
                score=score,
                origin="name",
            )
            for i, j, score in triples
        )
