"""CD shopping agent: catalog integration across several online stores.

The paper's first motivating scenario (§1): a shopping agent collects data
about identical CDs offered at different sites, bridges their different
schemata, detects which offers describe the same CD and fuses them into one
catalog entry — "possibly favoring the data of the cheapest store".

The store catalogs are generated synthetically (the original demo data is not
available) with known ground truth, so the script can also report how well
the automatic pipeline did.

Run with:  python examples/cd_shopping.py
"""

from repro import HumMer
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario
from repro.evaluation import evaluate_clusters


def main() -> None:
    # Three stores, half of the catalog overlaps, mild dirtiness.
    dataset = cd_stores_scenario(
        entity_count=60, store_count=3, overlap=0.5,
        corruption=CorruptionConfig.low(), seed=42,
    )

    hummer = HumMer()
    for alias, relation in dataset.sources.items():
        hummer.register(alias, relation)
        print(f"registered {alias}: {len(relation)} offers, schema {relation.column_names}")

    # Fully automatic fusion: schema matching -> duplicate detection -> fusion.
    # The price conflict is resolved in the customer's favour (minimum price),
    # the release year by majority vote.
    result = hummer.fuse(
        list(dataset.sources),
        resolutions={
            "artist": "coalesce",
            "title": "longest",
            "price": "min",
            "year": "vote",
            "label": "coalesce",
            "genre": "vote",
        },
    )

    print("\nHow the stores' schemata were aligned:")
    for correspondence in result.correspondences:
        print(f"  {correspondence}")

    counts = result.detection.classified.counts
    print(
        f"\nDuplicate detection: {counts['sure_duplicates']} sure duplicates, "
        f"{counts['unsure']} unsure pairs, {result.detection.cluster_count} distinct CDs"
    )
    print(
        f"Conflicts among duplicate offers: {result.conflicts.contradiction_count} "
        f"contradictions, {result.conflicts.uncertainty_count} uncertainties"
    )

    print("\nIntegrated catalog (cheapest price per CD), first 15 entries:")
    print(result.relation.sorted_by(["artist", "title"]).head(15).to_text(limit=15))

    # Because the data is generated, we can score the duplicate detection.
    truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
    metrics = evaluate_clusters(result.detection.cluster_assignment, truth_pairs)
    print(
        f"\nAgainst ground truth: precision {metrics.precision:.2f}, "
        f"recall {metrics.recall:.2f}, F1 {metrics.f1:.2f}"
    )

    # Lineage: which store supplied the winning price of the first CD?
    first = result.relation.row(0)
    lineage = result.fusion.lineage.lookup(first["objectID"], "price")
    if lineage is not None and lineage.sources:
        print(f"\nThe price of {first['title']!r} comes from: {', '.join(sorted(lineage.sources))}")


if __name__ == "__main__":
    main()
