"""Crisis-data cleansing: the paper's tsunami-relief scenario.

Data about affected persons is collected multiple times by different
organisations (a field hospital, a relief NGO, an insurance registry) at
different levels of detail and accuracy.  HumMer fuses the reports into one
consistent record per person; the ``most_recent`` resolution function uses
the report date to prefer the freshest status, and ``max`` keeps the highest
loss estimate for insurance purposes.

The walkthrough uses a :class:`repro.FusionSession` — the six wizard steps
of the demo as an explicit state machine: advance step by step, inspect the
intermediate artefacts, adjust, continue.  A progress subscriber prints the
per-step timings a GUI would render as a progress bar.

Run with:  python examples/crisis_cleansing.py
"""

from repro import HumMer
from repro.core.fusion import FusionSpec, ResolutionSpec
from repro.datagen.scenarios import crisis_scenario


def main() -> None:
    dataset = crisis_scenario(entity_count=50, overlap=0.7, seed=7)

    hummer = HumMer()
    for alias, relation in dataset.sources.items():
        hummer.register(alias, relation)
        print(f"registered {alias}: {len(relation)} reports, schema {relation.column_names}")

    # The interactive wizard: one session, advanced step by step so every
    # intermediate artefact can be inspected before committing to a result.
    session = hummer.session(list(dataset.sources))
    session.subscribe(
        lambda event: print(f"  [{event.index}/{event.total}] {event.step}: {event.seconds:.3f}s")
    )

    print("\nAdvancing the wizard:")
    session.advance_to(session.SCHEMA_MATCHING)
    print("\nProposed attribute correspondences (step 2 of the wizard):")
    for correspondence in session.matching.correspondences:
        print(f"  {correspondence}")

    session.advance_to(session.ATTRIBUTE_SELECTION)
    print("\nAttributes selected for duplicate detection (step 3):")
    print(f"  kept:     {', '.join(session.selection.attributes)}")
    for attribute, reason in session.selection.rejected.items():
        print(f"  rejected: {attribute} ({reason})")

    session.advance_to(session.DUPLICATE_DETECTION)
    counts = session.detection.classified.counts
    print(
        f"\nDuplicate detection (step 4): {counts['sure_duplicates']} sure, "
        f"{counts['unsure']} unsure, {counts['sure_non_duplicates']} non-duplicates "
        f"-> {session.detection.cluster_count} distinct persons"
    )

    session.advance_to(session.CONFLICT_RESOLUTION)
    print("\nSample conflicts shown to the relief worker (step 5):")
    for conflict in session.conflicts.sample(5):
        print(f"  {conflict}")

    # Step 5/6: resolve conflicts — freshest status wins, loss estimates are
    # kept at their maximum, names take the longest (most complete) variant,
    # everything else falls back to Coalesce.  The spec is built against the
    # *preferred* schema (the first source registered is the field hospital,
    # so the person column is called "patient" after transformation) and set
    # on the session before the fusion step runs — adjust, then continue.
    preferences = {
        "patient": "longest",
        "origin": "vote",
        "status": ("most_recent", ["reported_on"]),
        "reported_on": "max",
        "loss_usd": "max",
        "claim_amount": "max",
    }
    session.spec = FusionSpec(
        resolutions=[
            ResolutionSpec(column.name, preferences.get(column.name.lower()))
            for column in session.detection.relation.schema
            if column.name.lower() not in ("objectid", "sourceid")
        ]
    )
    result = session.run()
    fusion = result.fusion
    print(f"\nClean person registry ({len(fusion.relation)} persons), first 12 rows:")
    print(fusion.relation.head(12).to_text(limit=12))

    merged_cells = len(fusion.lineage.merged_cells())
    print(
        f"\n{fusion.resolved_conflict_count} conflicting attribute values were resolved; "
        f"{merged_cells} result cells combine information from several organisations."
    )


if __name__ == "__main__":
    main()
