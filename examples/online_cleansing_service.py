"""Online data-cleansing service over flat files.

The paper's second application (§1): "Users of such a service simply submit
sets of heterogeneous and dirty data and receive a consistent and clean data
set in response."  This example plays that service: it takes CSV files
(written to a temporary directory to stay self-contained), registers them
with HumMer, fuses them fully automatically and writes the clean CSV back.

Run with:  python examples/online_cleansing_service.py
"""

import tempfile
from pathlib import Path

from repro import HumMer
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.engine.io.csv_source import CsvSource, write_csv


def submit_dirty_files(directory: Path) -> list:
    """Simulate a user uploading two dirty CSV exports of the same student body."""
    dataset = students_scenario(
        entity_count=80, overlap=0.4, corruption=CorruptionConfig.medium(), seed=99
    )
    paths = []
    for alias, relation in dataset.sources.items():
        path = directory / f"{alias}.csv"
        write_csv(relation, path)
        paths.append(path)
    return paths


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir)
        uploads = submit_dirty_files(directory)
        print("Uploaded files:")
        for path in uploads:
            print(f"  {path.name} ({path.stat().st_size} bytes)")

        # The cleansing service: register every upload and fuse.
        hummer = HumMer()
        for path in uploads:
            hummer.register(path.stem, CsvSource(path, name=path.stem))

        result = hummer.fuse([path.stem for path in uploads])
        summary = result.summary()
        print("\nCleansing report:")
        print(f"  input records:        {summary['input_tuples']}")
        print(f"  schema correspondences: {summary['correspondences']}")
        print(f"  distinct entities:    {summary['clusters']}")
        print(f"  value contradictions: {summary['contradictions']}")
        print(f"  clean records:        {summary['output_tuples']}")

        clean_path = directory / "clean_students.csv"
        write_csv(result.relation, clean_path)
        print(f"\nClean file written to {clean_path.name}; first rows:")
        print(result.relation.head(8).to_text(limit=8))


if __name__ == "__main__":
    main()
