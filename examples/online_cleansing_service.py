"""Online data-cleansing service over HTTP.

The paper's second application (§1): "Users of such a service simply submit
sets of heterogeneous and dirty data and receive a consistent and clean data
set in response."  This example plays both sides of that service over a real
socket: it boots the multi-tenant fusion service in-process, then acts as a
remote client — create a tenant, upload two dirty CSV exports of the same
student body, step a fusion session while streaming its wizard events, and
download the clean CSV.

Run with:  python examples/online_cleansing_service.py
"""

import threading

from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.engine.io.csv_source import relation_to_csv_text
from repro.service import ServiceClient, ServiceServer


def dirty_csv_uploads() -> dict:
    """Two dirty CSV exports of the same student body, as raw file text."""
    dataset = students_scenario(
        entity_count=80, overlap=0.4, corruption=CorruptionConfig.medium(), seed=99
    )
    return {
        alias: relation_to_csv_text(relation)
        for alias, relation in dataset.sources.items()
    }


def main() -> None:
    with ServiceServer() as server:
        print(f"service up at {server.base_url}")
        client = ServiceClient(server.base_url)
        client.create_tenant("cleansing-demo")

        uploads = dirty_csv_uploads()
        print("Uploading dirty files:")
        for alias, text in uploads.items():
            report = client.upload_csv(alias, text)
            print(f"  {alias}: {report['rows']} rows, {len(text)} bytes")

        session = client.create_session(list(uploads))["session"]

        # Follow the wizard's progress from a second connection while the
        # session advances — exactly what a browser UI would do.
        events = []
        streamer = threading.Thread(
            target=lambda: events.extend(client.stream_events(session)),
            daemon=True,
        )
        streamer.start()
        client.run_to_completion(session)
        streamer.join(timeout=30)

        print("\nWizard progress (streamed):")
        progress_counts = {}
        for event in events:
            if event["event"] == "progress":
                progress_counts[(event["step"], event["phase"])] = (
                    progress_counts.get((event["step"], event["phase"]), 0) + 1
                )
        for event in events:
            if event["event"] != "stage":
                continue
            print(f"  step {event['index']}/{event['total']} "
                  f"{event['step']} ({event['seconds']:.3f}s)")
            for (step, phase), count in progress_counts.items():
                if step == event["step"]:
                    print(f"    … {count} {phase} progress events")

        status = client.session_status(session)
        reports = status["step_reports"]
        detection = reports["duplicate_detection"]["payload"]
        fusion = reports["fusion"]["payload"]
        print("\nCleansing report:")
        print(f"  pairs scored:      {detection['pairs_scored']}")
        print(f"  distinct entities: {detection['clusters']}")
        print(f"  clean records:     {fusion['output_tuples']}")

        clean_csv = client.result_csv(session)
        lines = clean_csv.splitlines()
        print(f"\nClean CSV downloaded ({len(lines) - 1} records); first rows:")
        for line in lines[:6]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
