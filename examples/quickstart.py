"""Quickstart: fuse the paper's EE/CS student tables with one Fuse By query.

This is the example from Section 2.1 of the paper:

    SELECT Name, RESOLVE(Age, max)
    FUSE FROM EE_Students, CS_Students
    FUSE BY (Name)

Run with:  python examples/quickstart.py
"""

from repro import HumMer

EE_STUDENTS = [
    {"Name": "Anna Schmidt", "Age": 22, "Major": "Electrical Engineering"},
    {"Name": "Ben Mueller", "Age": 25, "Major": "Electrical Engineering"},
    {"Name": "Carla Weber", "Age": 23, "Major": "Electrical Engineering"},
    {"Name": "David Fischer", "Age": 27, "Major": "Electrical Engineering"},
]

CS_STUDENTS = [
    {"StudentName": "Anna Schmidt", "Years": 23, "Field": "Computer Science"},
    {"StudentName": "Ben Mueller", "Years": 25, "Field": "Computer Science"},
    {"StudentName": "Elena Wolf", "Years": 21, "Field": "Computer Science"},
]


def main() -> None:
    hummer = HumMer()
    hummer.register("EE_Students", EE_STUDENTS)
    hummer.register("CS_Students", CS_STUDENTS)

    print("Source tables:")
    for alias in hummer.sources():
        print(f"\n-- {alias} --")
        print(hummer.relation(alias).to_text())

    # The schema matcher aligns StudentName->Name, Years->Age automatically;
    # students are identified by name and age conflicts resolve to the maximum.
    query = (
        "SELECT Name, RESOLVE(Age, max) "
        "FUSE FROM EE_Students, CS_Students FUSE BY (Name)"
    )
    print(f"\nQuery:\n  {query}\n")
    result = hummer.query(query)
    print("Fused result (one tuple per student, highest age wins):")
    print(result.to_text())

    # The same fusion through the step-by-step pipeline, to inspect the
    # intermediate artefacts the demo GUI would show.
    pipeline_result = hummer.fuse(["EE_Students", "CS_Students"])
    print("\nPipeline summary:")
    for key, value in pipeline_result.summary().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")
    print("\nAttribute correspondences found by instance-based matching:")
    for correspondence in pipeline_result.correspondences:
        print(f"  {correspondence}")


if __name__ == "__main__":
    main()
