"""Legacy setup shim.

The environment this reproduction targets is fully offline and has no
``wheel`` package, so PEP 660 editable installs (which need ``bdist_wheel``)
fail.  Providing a ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
