"""E3 — conflict-resolution strategies vs. plain UNION and GROUP BY baselines.

Fuse By-style experiment (Bleiholder & Naumann, ADBIS 2005): fuse the CD-store
catalogs with different per-column resolution strategies and measure the
data-fusion quality dimensions — completeness, conciseness, correctness —
against the generator's clean catalog; compare with

* the plain outer UNION (no duplicate handling at all), and
* SQL GROUP BY on the (dirty) title key with a standard aggregate.

Expected shape: UNION is complete but maximally redundant (low conciseness);
GROUP BY on a dirty key is concise only for exact key matches; every Fuse By
strategy reaches full conciseness, with correctness depending on the strategy
(vote/min/coalesce differ only on genuinely conflicting attributes).
"""

from benchmarks.conftest import print_table
from repro.baselines.groupby_fusion import groupby_fusion
from repro.baselines.naive_union import naive_union
from repro.core.fusion import FusionSpec, ResolutionSpec, FusionOperator
from repro.core.pipeline import FusionPipeline
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario
from repro.engine.catalog import Catalog
from repro.evaluation import evaluate_fusion

STRATEGIES = {
    "coalesce (default)": {},
    "vote": {"artist": "vote", "title": "vote", "year": "vote", "genre": "vote", "label": "vote"},
    "min price / vote rest": {"price": "min", "year": "vote", "genre": "vote"},
    "longest strings": {"artist": "longest", "title": "longest", "label": "longest"},
    "most precise numerics": {"price": "most_precise", "year": "vote"},
}

ATTRIBUTES = ["artist", "year", "genre", "label", "price"]


def build():
    dataset = cd_stores_scenario(
        entity_count=70, store_count=3, overlap=0.6,
        corruption=CorruptionConfig.low(), seed=33,
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    pipeline = FusionPipeline(catalog)
    sources = pipeline.step_choose_sources(list(dataset.sources))
    matching = pipeline.step_schema_matching(sources)
    combined = pipeline.step_transform(sources, matching)
    selection = pipeline.step_attribute_selection(combined)
    detection = pipeline.step_duplicate_detection(combined, selection)
    return dataset, pipeline, sources, matching, detection


def quality(relation, dataset):
    return evaluate_fusion(
        relation,
        dataset.truth.clean_records,
        entity_key_column="title",
        entity_key_attribute="title",
        attributes=[a for a in ATTRIBUTES if relation.schema.has_column(a)],
    )


def test_e3_resolution_strategies_vs_baselines(benchmark):
    dataset, pipeline, sources, matching, detection = build()
    rows = []

    union_result = naive_union(sources, matching.correspondences)
    union_quality = quality(union_result, dataset)
    rows.append(("UNION (no fusion)",) + tuple(union_quality.as_dict().values()))

    groupby_result = groupby_fusion(
        union_result.without_columns(["sourceID"]), ["title"], aggregate="min"
    )
    groupby_quality = quality(groupby_result, dataset)
    rows.append(("GROUP BY title / MIN",) + tuple(groupby_quality.as_dict().values()))

    strategy_qualities = {}
    for label, preferences in STRATEGIES.items():
        resolutions = [
            ResolutionSpec(column.name, preferences.get(column.name.lower()))
            for column in detection.relation.schema
            if column.name.lower() not in ("objectid", "sourceid")
        ]
        fusion = pipeline.step_fusion(detection, spec=FusionSpec(resolutions=resolutions))
        strategy_quality = quality(fusion.relation, dataset)
        strategy_qualities[label] = strategy_quality
        rows.append((f"FUSE BY: {label}",) + tuple(strategy_quality.as_dict().values()))

    print_table(
        "E3: fusion quality per strategy (CD stores)",
        ["strategy", "completeness", "conciseness", "correctness", "tuples", "entities"],
        rows,
    )

    # Expected shape: every Fuse By strategy removes more redundancy than the
    # plain UNION (far fewer tuples, higher conciseness) and at least as much
    # as GROUP BY on the dirty natural key (which cannot merge typo'd keys).
    for label, strategy_quality in strategy_qualities.items():
        assert strategy_quality.conciseness > union_quality.conciseness, label
        assert strategy_quality.tuple_count <= groupby_quality.tuple_count, label
        assert strategy_quality.tuple_count < union_quality.tuple_count, label

    default_spec = FusionSpec()
    benchmark.pedantic(
        lambda: FusionOperator(default_spec).fuse(detection.relation), rounds=1, iterations=1
    )
