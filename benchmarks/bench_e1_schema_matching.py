"""E1 — schema-matching accuracy vs. number of seed duplicates, vs. a name-only baseline.

DUMAS-style experiment (Bilke & Naumann, ICDE 2005): how many seed duplicates
does instance-based matching need, and how does it compare with matching on
attribute labels alone?  The second source renames most attributes, so the
label baseline has little to work with — the expected *shape* is that the
instance matcher reaches high F1 with a handful of seeds while the baseline
stays flat and low.
"""

from benchmarks.conftest import print_table
from repro.baselines.name_matcher import NameBasedMatcher
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.evaluation import evaluate_correspondences
from repro.matching.dumas import DumasMatcher

SEED_COUNTS = [1, 3, 5, 10, 20]


def build_dataset():
    # medium corruption: seed duplicates are noisy, so a single seed can
    # mislead the field-wise comparison — that is exactly why DUMAS averages
    # the similarity matrices of several duplicates.
    return students_scenario(
        entity_count=120, overlap=0.4, corruption=CorruptionConfig.medium(), seed=17
    )


def test_e1_matching_accuracy_vs_seed_count(benchmark):
    dataset = build_dataset()
    left, right = dataset.source_list
    truth = dataset.truth.true_correspondences(left.name, right.name)

    rows = []
    for seeds in SEED_COUNTS:
        result = DumasMatcher(max_seeds=seeds).match(left, right)
        metrics = evaluate_correspondences(result.correspondences, truth)
        rows.append(
            (f"DUMAS, k={seeds}", len(result.seeds), metrics.precision, metrics.recall, metrics.f1)
        )

    baseline = NameBasedMatcher().match(left, right)
    baseline_metrics = evaluate_correspondences(baseline, truth)
    rows.append(
        ("name-only baseline", 0, baseline_metrics.precision, baseline_metrics.recall,
         baseline_metrics.f1)
    )
    print_table(
        "E1: schema-matching accuracy (students, renamed schema)",
        ["matcher", "seeds used", "precision", "recall", "F1"],
        rows,
    )

    # Expected shape: with >= 3 seeds the instance matcher clearly beats the
    # label baseline on this renamed schema.
    dumas_f1 = dict((row[0], row[4]) for row in rows)
    assert dumas_f1["DUMAS, k=5"] > baseline_metrics.f1

    benchmark.pedantic(
        lambda: DumasMatcher(max_seeds=5).match(left, right), rounds=1, iterations=1
    )
