"""E5 — THALIA-style heterogeneity coverage.

The demo planned to show THALIA benchmark examples.  For each of the twelve
THALIA heterogeneity classes a two-university course-catalog pair is
generated; the automatic pipeline runs and the table reports whether the
affected attribute was aligned and how well duplicates were found.

Expected shape: renaming-style heterogeneities (synonyms, languages, opaque
labels, nulls) are bridged automatically by instance-based matching; classes
that require value transformations or structural reorganisation are not — the
paper leaves those to the user, which is exactly what the coverage column
shows.
"""

from benchmarks.conftest import print_table
from repro.core.pipeline import FusionPipeline
from repro.datagen.scenarios.thalia import AUTOMATABLE_CATEGORIES, THALIA_CATEGORIES, thalia_scenario
from repro.engine.catalog import Catalog
from repro.evaluation import evaluate_clusters


def run_category(category):
    dataset = thalia_scenario(category, entity_count=30, seed=51)
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    result = FusionPipeline(catalog).run(list(dataset.sources))
    truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
    dedup = evaluate_clusters(result.detection.cluster_assignment, truth_pairs)
    return dataset, result, dedup


def test_e5_thalia_coverage(benchmark):
    rows = []
    automated = 0
    for category in sorted(THALIA_CATEGORIES):
        dataset, result, dedup = run_category(category)
        correspondences = len(result.correspondences)
        bridged = correspondences >= 3 and dedup.f1 >= 0.6
        if bridged:
            automated += 1
        rows.append(
            (
                category,
                THALIA_CATEGORIES[category].split("—")[0].strip(),
                correspondences,
                dedup.f1,
                "yes" if bridged else "partial/no",
            )
        )
    print_table(
        "E5: THALIA heterogeneity classes bridged automatically",
        ["class", "heterogeneity", "correspondences", "dedup F1", "bridged automatically"],
        rows,
    )
    # Expected shape: at least the renaming-style classes are bridged.
    bridged_classes = {row[0] for row in rows if row[4] == "yes"}
    assert AUTOMATABLE_CATEGORIES & bridged_classes == AUTOMATABLE_CATEGORIES & bridged_classes
    assert len(bridged_classes) >= 3

    benchmark.pedantic(lambda: run_category(1), rounds=1, iterations=1)
