"""Ablation — which parts of the duplicate-detection measure matter?

DESIGN.md calls out three design choices in the similarity measure beyond the
paper's plain description: per-attribute *sharpening* of raw similarities,
*soft-IDF weighting* of attributes (the paper's "identifying power of a data
item"), and *range-scaled numeric distance*.  This ablation removes each in
turn and measures the impact on duplicate-detection F1 at medium corruption.

Expected shape: the full measure is the best (or tied-best) configuration;
removing sharpening hurts the most because borderline non-duplicates start to
chain through the transitive closure.
"""

from benchmarks.conftest import print_table
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.dedup.classification import classify_pairs
from repro.dedup.clustering import transitive_closure_clusters
from repro.dedup.descriptions import AttributeSelection, select_interesting_attributes
from repro.dedup.pairs import CandidatePairGenerator
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.evaluation import evaluate_clusters
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources

THRESHOLD = 0.7


def prepare():
    dataset = students_scenario(
        entity_count=60, overlap=0.4, corruption=CorruptionConfig.medium(), seed=61
    )
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    combined = transform_sources(sources, matching.correspondences)
    truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
    return combined, truth_pairs


def run_variant(combined, truth_pairs, *, sharpness, use_idf, numeric_range_fraction):
    selection = select_interesting_attributes(combined)
    if not use_idf:
        # neutralise the identifying-power weighting: every attribute weighs 1
        selection = AttributeSelection(
            attributes=list(selection.attributes),
            weights={name: 1.0 for name in selection.attributes},
            rejected=dict(selection.rejected),
        )
    measure = DuplicateSimilarityMeasure(
        selection,
        sharpness=sharpness,
        soft_idf_smoothing=1e9 if not use_idf else 1.0,  # huge smoothing flattens idf
        numeric_range_fraction=numeric_range_fraction,
    ).fit(combined)
    generator = CandidatePairGenerator(measure, filter_threshold=0.0, use_filter=False)
    scores = generator.score_pairs(combined)
    accepted = classify_pairs(scores, THRESHOLD, uncertainty_band=0.0).accepted_pairs()
    assignment = transitive_closure_clusters(len(combined), accepted)
    return evaluate_clusters(assignment, truth_pairs)


def test_ablation_similarity_measure(benchmark):
    combined, truth_pairs = prepare()
    variants = {
        "full measure": dict(sharpness=2.5, use_idf=True, numeric_range_fraction=0.2),
        "no sharpening": dict(sharpness=1.0, use_idf=True, numeric_range_fraction=0.2),
        "no soft-IDF weighting": dict(sharpness=2.5, use_idf=False, numeric_range_fraction=0.2),
        "no numeric range scaling": dict(sharpness=2.5, use_idf=True, numeric_range_fraction=0.0),
    }
    rows = []
    results = {}
    for label, options in variants.items():
        metrics = run_variant(combined, truth_pairs, **options)
        results[label] = metrics
        rows.append((label, metrics.precision, metrics.recall, metrics.f1))
    print_table(
        "Ablation: duplicate-detection measure components (students, medium corruption)",
        ["variant", "precision", "recall", "F1"],
        rows,
    )

    full = results["full measure"]
    # Expected shape: sharpening and numeric range scaling carry the result —
    # removing either costs a lot of precision (borderline pairs chain through
    # the transitive closure).  Soft-IDF weighting is roughly neutral on this
    # synthetic workload (every attribute has a similar value distribution),
    # which the table makes visible rather than hiding.
    assert full.f1 >= 0.7
    assert full.f1 > results["no sharpening"].f1 + 0.2
    assert full.f1 > results["no numeric range scaling"].f1 + 0.1
    assert full.precision >= results["no sharpening"].precision

    benchmark.pedantic(
        lambda: run_variant(
            combined, truth_pairs, sharpness=2.5, use_idf=True, numeric_range_fraction=0.2
        ),
        rounds=1,
        iterations=1,
    )
