"""FIG1 — Fuse By grammar conformance and parsing throughput.

Regenerates Figure 1 of the paper as an executable artefact: every production
path of the syntax diagram is parsed and the acceptance matrix is printed;
pytest-benchmark times a full parse of the paper's example statement.
"""

import pytest

from benchmarks.conftest import print_table
from repro.exceptions import QueryError
from repro.fuseby.parser import parse_query

PRODUCTIONS = [
    ("select *", "SELECT * FUSE FROM a, b FUSE BY (k)"),
    ("select colref", "SELECT col FUSE FROM a, b FUSE BY (k)"),
    ("RESOLVE(colref)", "SELECT RESOLVE(col) FUSE FROM a, b FUSE BY (k)"),
    ("RESOLVE(colref, function)", "SELECT RESOLVE(col, vote) FUSE FROM a, b FUSE BY (k)"),
    ("RESOLVE with arguments", "SELECT RESOLVE(p, choose('s1')) FUSE FROM a, b FUSE BY (k)"),
    ("plain FROM", "SELECT * FROM a, b"),
    ("FUSE FROM, many tables", "SELECT * FUSE FROM a, b, c, d FUSE BY (k)"),
    ("where-clause", "SELECT * FUSE FROM a, b WHERE x > 1 FUSE BY (k)"),
    ("FUSE BY one colref", "SELECT * FUSE FROM a, b FUSE BY (k1)"),
    ("FUSE BY many colrefs", "SELECT * FUSE FROM a, b FUSE BY (k1, k2, k3)"),
    ("FUSE BY empty", "SELECT * FUSE FROM a, b FUSE BY ()"),
    ("no FUSE BY", "SELECT * FUSE FROM a, b"),
    ("HAVING", "SELECT * FUSE FROM a, b FUSE BY (k) HAVING n > 1"),
    ("ORDER BY", "SELECT * FUSE FROM a, b FUSE BY (k) ORDER BY k DESC"),
    ("paper example", "SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name)"),
]

NEAR_MISSES = [
    ("missing SELECT", "RESOLVE(Age) FROM t"),
    ("empty select list", "SELECT FROM t"),
    ("missing tableref", "SELECT * FUSE FROM"),
    ("FUSE BY without parens", "SELECT * FUSE FROM a, b FUSE BY k"),
    ("unclosed FUSE BY", "SELECT * FUSE FROM a, b FUSE BY (k"),
]


def test_fig1_grammar_conformance(benchmark):
    rows = []
    for label, statement in PRODUCTIONS:
        parse_query(statement)  # must not raise
        rows.append((label, "accepted"))
    for label, statement in NEAR_MISSES:
        with pytest.raises(QueryError):
            parse_query(statement)
        rows.append((label, "rejected"))
    print_table("FIG1: Fuse By syntax diagram conformance", ["production", "outcome"], rows)

    statement = PRODUCTIONS[-1][1]
    benchmark(parse_query, statement)
