"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the reproduction
(see DESIGN.md, "Per-experiment index").  Every benchmark prints the rows it
measured — the printed tables are the artefacts recorded in EXPERIMENTS.md —
and wraps a representative unit of work in pytest-benchmark for timing.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def pytest_addoption(parser):
    """Benchmark knobs, used by the CI smoke job (see .github/workflows/ci.yml)."""
    group = parser.getgroup("hummer-benchmarks")
    group.addoption(
        "--workers",
        action="store",
        type=int,
        default=2,
        help="worker processes for the E4 parallel-scoring series",
    )
    group.addoption(
        "--e4-entities",
        action="store",
        default=None,
        help="comma-separated entity counts for the E4 parallel-scoring "
        "series (overrides the built-in sizes, e.g. 40,80 for a CI smoke run)",
    )
    group.addoption(
        "--e2-cluster-json",
        action="store",
        default=None,
        help="write the E2 clustering-strategy quality series (precision / "
        "recall per strategy on clean vs chained data) to this JSON file "
        "(uploaded as a CI artifact)",
    )
    group.addoption(
        "--e4-json",
        action="store",
        default=None,
        help="write the E4 parallel-scoring timings to this JSON file "
        "(uploaded as a CI artifact so the timing trajectory accumulates)",
    )
    group.addoption(
        "--e4-warm-json",
        action="store",
        default=None,
        help="write the E4 warm-vs-cold prepared-source timings to this "
        "JSON file (uploaded as a CI artifact)",
    )
    group.addoption(
        "--e4-warm-entities",
        action="store",
        default=None,
        help="comma-separated entity counts for the E4 warm-vs-cold series "
        "(overrides the built-in sizes for CI smoke runs)",
    )
    group.addoption(
        "--e4-columnar-entities",
        action="store",
        default=None,
        help="comma-separated entity counts for the E4 columnar-scoring "
        "series (overrides the built-in 1k/5k/10k sizes for CI smoke runs)",
    )
    group.addoption(
        "--e4-columnar-json",
        action="store",
        default=None,
        help="write the E4 per-pair vs batched columnar scoring timings to "
        "this JSON file (uploaded as a CI artifact)",
    )
    group.addoption(
        "--e4-match-entities",
        action="store",
        default=None,
        help="comma-separated entity counts for the E4 matching-scale series "
        "(overrides the built-in 1k/5k/10k sizes for CI smoke runs)",
    )
    group.addoption(
        "--e4-match-json",
        action="store",
        default=None,
        help="write the E4 matching-scale timings and seed-scoring counters "
        "to this JSON file (uploaded as a CI artifact)",
    )


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment table to stdout (captured with ``pytest -s``)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([
            f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    print(f"\n=== {title} ===")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        print(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
