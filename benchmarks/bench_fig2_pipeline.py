"""FIG2 — end-to-end pipeline dataflow on the paper's three scenarios.

Regenerates Figure 2 as an executable artefact: for each motivating scenario
(CD stores, students, crisis reports) the six pipeline steps run fully
automatically and the table reports the intermediate artefact sizes the demo
GUI would show at each step — correspondences, duplicate segments, sample
conflicts and the clean result.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.pipeline import FusionPipeline
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario, crisis_scenario, students_scenario
from repro.engine.catalog import Catalog

SCENARIOS = {
    "cd_stores": lambda: cd_stores_scenario(
        entity_count=40, store_count=3, corruption=CorruptionConfig.low(), seed=1
    ),
    "students": lambda: students_scenario(
        entity_count=50, corruption=CorruptionConfig.low(), seed=2
    ),
    "crisis": lambda: crisis_scenario(
        entity_count=35, corruption=CorruptionConfig.low(), seed=3
    ),
}


def run_scenario(name):
    dataset = SCENARIOS[name]()
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    result = FusionPipeline(catalog).run(list(dataset.sources))
    return dataset, result


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_fig2_pipeline_dataflow(benchmark, name):
    dataset, result = benchmark.pedantic(
        lambda: run_scenario(name), rounds=1, iterations=1
    )
    counts = result.detection.classified.counts
    rows = [
        ("1 choose sources", f"{len(result.sources)} sources, "
                             f"{sum(len(s) for s in result.sources)} tuples"),
        ("2 schema matching", f"{len(result.correspondences)} correspondences"),
        ("2b transformation", f"{len(result.transformed)} tuples x "
                              f"{len(result.transformed.schema)} columns (outer union)"),
        ("3 duplicate definition", f"{len(result.attribute_selection)} attributes selected"),
        ("4 duplicate detection", f"{counts['sure_duplicates']} sure / {counts['unsure']} unsure / "
                                  f"{counts['sure_non_duplicates']} non-dup pairs; "
                                  f"{result.detection.cluster_count} objects"),
        ("5 conflicts", f"{result.conflicts.contradiction_count} contradictions, "
                        f"{result.conflicts.uncertainty_count} uncertainties"),
        ("6 result set", f"{len(result.relation)} clean tuples "
                         f"({result.fusion.resolved_conflict_count} conflicts resolved)"),
        ("total time", f"{result.timings.total:.2f} s"),
    ]
    print_table(f"FIG2: pipeline dataflow — scenario {name}", ["step", "artefact"], rows)
    assert len(result.relation) <= sum(len(s) for s in result.sources)
