"""E4 — scalability of the three pipeline phases.

Wall-clock time of schema matching, duplicate detection and fusion as the
number of tuples and the number of sources grow.

Expected shape: duplicate detection dominates and grows roughly quadratically
in the number of tuples (pairwise comparisons), schema matching grows mildly
(seeding is capped), fusion is linear in the number of tuples.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.pipeline import FusionPipeline
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario, students_scenario
from repro.engine.catalog import Catalog

ENTITY_COUNTS = [20, 40, 80, 120]
SOURCE_COUNTS = [2, 3, 4]


def run_students(entities):
    dataset = students_scenario(
        entity_count=entities, corruption=CorruptionConfig.low(), seed=41
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    return FusionPipeline(catalog).run(list(dataset.sources))


def run_cds(sources):
    dataset = cd_stores_scenario(
        entity_count=40, store_count=sources, corruption=CorruptionConfig.low(), seed=43
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    return FusionPipeline(catalog).run(list(dataset.sources))


def test_e4_scalability_in_tuples(benchmark):
    rows = []
    results = {}
    for entities in ENTITY_COUNTS:
        result = run_students(entities)
        results[entities] = result
        timings = result.timings
        rows.append(
            (
                entities,
                sum(len(s) for s in result.sources),
                timings.matching,
                timings.duplicate_detection,
                timings.fusion,
                timings.total,
            )
        )
    print_table(
        "E4a: phase runtimes vs data size (2 sources, students)",
        ["entities", "tuples", "matching s", "dedup s", "fusion s", "total s"],
        rows,
    )
    # Expected shape: duplicate detection dominates at the largest size, and
    # total time grows with the data.
    largest = rows[-1]
    assert largest[3] >= largest[2] and largest[3] >= largest[4]
    assert rows[-1][5] > rows[0][5]

    benchmark.pedantic(lambda: run_students(40), rounds=1, iterations=1)


def test_e4_scalability_in_sources(benchmark):
    rows = []
    for sources in SOURCE_COUNTS:
        result = run_cds(sources)
        timings = result.timings
        rows.append(
            (
                sources,
                sum(len(s) for s in result.sources),
                len(result.correspondences),
                timings.matching,
                timings.duplicate_detection,
                timings.total,
            )
        )
    print_table(
        "E4b: phase runtimes vs number of sources (CD stores)",
        ["sources", "tuples", "correspondences", "matching s", "dedup s", "total s"],
        rows,
    )
    assert rows[-1][5] >= rows[0][5] * 0.5  # sanity: more sources is not magically cheaper

    benchmark.pedantic(lambda: run_cds(2), rounds=1, iterations=1)
