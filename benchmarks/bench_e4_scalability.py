"""E4 — scalability of the three pipeline phases, and blocking vs. all-pairs.

Wall-clock time of schema matching, duplicate detection and fusion as the
number of tuples and the number of sources grow.

Expected shape: duplicate detection dominates and grows roughly quadratically
in the number of tuples (pairwise comparisons) under the all-pairs baseline,
schema matching grows mildly (seeding is capped), fusion is linear in the
number of tuples.  The blocking series shows `snm` and `token` proposing a
shrinking fraction of the quadratic pair count while reproducing the exact
accepted duplicate-pair set at the parity checkpoint.  The parallel-scoring
series shows the multiprocess executor reproducing the serial run bit for
bit while reporting the wall-clock speedup (informational — CI runners may
be single-core).
"""

import json
import time

from benchmarks.conftest import print_table
from repro.core.pipeline import FusionPipeline
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import cd_stores_scenario, students_scenario
from repro.dedup.blocking import AdaptiveBlocking
from repro.dedup.descriptions import select_interesting_attributes
from repro.dedup.detector import DuplicateDetector
from repro.dedup.executor import (
    MultiprocessExecutor,
    ScoringBatch,
    SerialExecutor,
    score_batch,
)
from repro.dedup.pairs import CandidatePairGenerator
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.engine.catalog import Catalog
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources

ENTITY_COUNTS = [20, 40, 80, 120]
SOURCE_COUNTS = [2, 3, 4]

#: Sizes for the blocking comparison.  The all-pairs baseline runs up to the
#: parity checkpoint; the blocked strategies continue into territory where
#: quadratic enumeration is already painful.
BLOCKING_ENTITY_COUNTS = [40, 80, 120, 250, 500]
PARITY_CHECKPOINT = 120  # largest size where all-pairs is still cheap enough

#: Default sizes for the serial-vs-parallel scoring series (override with
#: ``--e4-entities`` for the CI smoke run).
PARALLEL_ENTITY_COUNTS = [80, 160, 320]


def run_students(entities):
    dataset = students_scenario(
        entity_count=entities, corruption=CorruptionConfig.low(), seed=41
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    return FusionPipeline(catalog).run(list(dataset.sources))


def run_cds(sources):
    dataset = cd_stores_scenario(
        entity_count=40, store_count=sources, corruption=CorruptionConfig.low(), seed=43
    )
    catalog = Catalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    return FusionPipeline(catalog).run(list(dataset.sources))


def test_e4_scalability_in_tuples(benchmark):
    rows = []
    results = {}
    for entities in ENTITY_COUNTS:
        result = run_students(entities)
        results[entities] = result
        timings = result.timings
        rows.append(
            (
                entities,
                sum(len(s) for s in result.sources),
                timings.matching,
                timings.duplicate_detection,
                timings.fusion,
                timings.total,
            )
        )
    print_table(
        "E4a: phase runtimes vs data size (2 sources, students)",
        ["entities", "tuples", "matching s", "dedup s", "fusion s", "total s"],
        rows,
    )
    # Expected shape: duplicate detection dominates at the largest size, and
    # total time grows with the data.
    largest = rows[-1]
    assert largest[3] >= largest[2] and largest[3] >= largest[4]
    assert rows[-1][5] > rows[0][5]

    benchmark.pedantic(lambda: run_students(40), rounds=1, iterations=1)


def test_e4_scalability_in_sources(benchmark):
    rows = []
    for sources in SOURCE_COUNTS:
        result = run_cds(sources)
        timings = result.timings
        rows.append(
            (
                sources,
                sum(len(s) for s in result.sources),
                len(result.correspondences),
                timings.matching,
                timings.duplicate_detection,
                timings.total,
            )
        )
    print_table(
        "E4b: phase runtimes vs number of sources (CD stores)",
        ["sources", "tuples", "correspondences", "matching s", "dedup s", "total s"],
        rows,
    )
    assert rows[-1][5] >= rows[0][5] * 0.5  # sanity: more sources is not magically cheaper

    benchmark.pedantic(lambda: run_cds(2), rounds=1, iterations=1)


def prepare_students(entities, seed=43):
    dataset = students_scenario(
        entity_count=entities, corruption=CorruptionConfig.low(), seed=seed
    )
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    return transform_sources(sources, matching.correspondences)


def test_e4_blocking_vs_allpairs(benchmark):
    rows = []
    parity_accepted = {}
    parity_candidates = {}
    parity_compared = {}
    for entities in BLOCKING_ENTITY_COUNTS:
        combined = prepare_students(entities)
        strategies = ["allpairs", "snm", "token"]
        if entities > PARITY_CHECKPOINT:
            strategies = ["snm", "token"]  # all-pairs is the quadratic wall
        for strategy in strategies:
            started = time.perf_counter()
            result = DuplicateDetector(blocking=strategy).detect(combined)
            elapsed = time.perf_counter() - started
            stats = result.filter_statistics
            rows.append(
                (
                    entities,
                    len(combined),
                    strategy,
                    stats.total_pairs,
                    stats.blocking_candidates,
                    stats.compared,
                    len(result.duplicate_pairs),
                    elapsed,
                )
            )
            if entities == PARITY_CHECKPOINT:
                parity_accepted[strategy] = set(result.duplicate_pairs)
                parity_candidates[strategy] = stats.blocking_candidates
                parity_compared[strategy] = stats.compared
    print_table(
        "E4c: blocking vs all-pairs (students, low corruption)",
        ["entities", "tuples", "blocking", "all pairs", "candidates", "compared", "accepted", "dedup s"],
        rows,
    )

    # Parity checkpoint: the blocked strategies accept the identical
    # duplicate-pair set while fully comparing at most 25% of the all-pairs
    # candidate count (acceptance bar for the blocking subsystem).  The run
    # is deterministic (fixed seed), but the snm margin is thin (~2%): if a
    # change to the generator, selection heuristics or measure trips this,
    # re-tune SortedNeighborhoodBlocking defaults (window / max_keys) rather
    # than loosening the bound.
    for strategy in ["snm", "token"]:
        assert parity_accepted[strategy] == parity_accepted["allpairs"]
        assert parity_candidates[strategy] < parity_candidates["allpairs"]
        assert parity_compared[strategy] <= 0.25 * parity_candidates["allpairs"]

    # Blocked candidate growth stays far below quadratic: doubling from 250
    # to 500 entities must not quadruple the candidate count.
    by_strategy = {}
    for entities, _, strategy, _, candidates, *_ in rows:
        by_strategy.setdefault(strategy, {})[entities] = candidates
    for strategy in ["snm", "token"]:
        assert by_strategy[strategy][500] < 3.0 * by_strategy[strategy][250]

    benchmark.pedantic(
        lambda: DuplicateDetector(blocking="token").detect(prepare_students(80)),
        rounds=1,
        iterations=1,
    )


#: Sizes for the adaptive-vs-fixed series.  At the parity sizes (both at or
#: below 256 entities, i.e. under the planner's 400-tuple small threshold)
#: adaptive must reproduce the all-pairs result exactly; at the large size it
#: must escalate and respect the candidate budget.
ADAPTIVE_PARITY_ENTITIES = 120
ADAPTIVE_PLAN_ONLY_ENTITIES = 250
ADAPTIVE_LARGE_ENTITIES = 1000


def test_e4_adaptive_blocking(benchmark):
    """Adaptive planner vs fixed strategies (ISSUE 3 acceptance bar).

    * ≤256-entity inputs: the plan is the exact all-pairs baseline, so
      duplicate recall matches all-pairs by construction — asserted end to
      end at the parity size, by plan inspection at the second size.
    * ≥1000 entities: the plan escalates past all-pairs and the proposed
      candidates stay at or below 30% of all pairs (candidate enumeration
      only — scoring that many pairs is the parallel executor's benchmark).
    """
    rows = []

    # -- parity checkpoint: full detection, adaptive vs all-pairs -----------------
    combined = prepare_students(ADAPTIVE_PARITY_ENTITIES)
    baseline = DuplicateDetector(blocking="allpairs").detect(combined)
    adaptive = DuplicateDetector(blocking="adaptive").detect(combined)
    plan = adaptive.filter_statistics.blocking_plan
    assert plan is not None and plan["strategy"] == "allpairs"
    assert set(adaptive.duplicate_pairs) == set(baseline.duplicate_pairs)
    assert adaptive.cluster_assignment == baseline.cluster_assignment
    stats = adaptive.filter_statistics
    rows.append(
        (
            ADAPTIVE_PARITY_ENTITIES,
            len(combined),
            "adaptive→allpairs",
            stats.total_pairs,
            stats.blocking_candidates,
            len(adaptive.duplicate_pairs),
        )
    )

    # -- plan-only check just under the threshold ---------------------------------
    combined = prepare_students(ADAPTIVE_PLAN_ONLY_ENTITIES)
    selection = select_interesting_attributes(combined)
    strategy = AdaptiveBlocking()
    plan_only = strategy.plan(combined, list(selection.attributes))
    assert plan_only.strategy_name == "allpairs"
    rows.append(
        (
            ADAPTIVE_PLAN_ONLY_ENTITIES,
            len(combined),
            "adaptive→allpairs",
            plan_only.profile.total_pairs,
            plan_only.proposed_pairs,
            "-",
        )
    )

    # -- large input: candidate budget, adaptive vs fixed strategies --------------
    combined = prepare_students(ADAPTIVE_LARGE_ENTITIES)
    selection = select_interesting_attributes(combined)
    measure = DuplicateSimilarityMeasure(selection).fit(combined)
    for blocking in ["adaptive", "snm", "token"]:
        generator = CandidatePairGenerator(measure, filter_threshold=0.65, blocking=blocking)
        candidates = sum(1 for _ in generator.candidate_indices(combined))
        stats = generator.statistics
        label = blocking
        if blocking == "adaptive":
            plan = stats.blocking_plan
            assert plan is not None and plan["strategy"] != "allpairs"
            assert candidates <= 0.30 * stats.total_pairs
            label = f"adaptive→{plan['strategy']}"
        rows.append(
            (
                ADAPTIVE_LARGE_ENTITIES,
                len(combined),
                label,
                stats.total_pairs,
                candidates,
                "-",
            )
        )

    print_table(
        "E4e: adaptive vs fixed blocking (students, low corruption)",
        ["entities", "tuples", "blocking", "all pairs", "candidates", "accepted"],
        rows,
    )

    benchmark.pedantic(
        lambda: DuplicateDetector(blocking="adaptive").detect(
            prepare_students(ADAPTIVE_PARITY_ENTITIES)
        ),
        rounds=1,
        iterations=1,
    )


def test_e4_parallel_scoring(benchmark, request):
    """Serial vs. multiprocess scoring: identical results, reported speedup.

    Acceptance bar for the executor subsystem: with 2+ workers the
    multiprocess executor must reproduce the serial accepted duplicate-pair
    set, cluster assignment and filter statistics exactly at every size.
    Speedup is reported but not asserted — CI runners may expose one core.
    """
    workers = request.config.getoption("--workers")
    entities_option = request.config.getoption("--e4-entities")
    json_path = request.config.getoption("--e4-json")
    sizes = (
        [int(value) for value in entities_option.split(",") if value.strip()]
        if entities_option
        else PARALLEL_ENTITY_COUNTS
    )

    rows = []
    records = []
    for entities in sizes:
        combined = prepare_students(entities)

        started = time.perf_counter()
        serial = DuplicateDetector(
            blocking="token", executor=SerialExecutor()
        ).detect(combined)
        serial_s = time.perf_counter() - started

        # min_parallel_pairs=0 forces the pool even at smoke sizes, so the
        # parallel code path is genuinely exercised on every CI run.
        started = time.perf_counter()
        parallel = DuplicateDetector(
            blocking="token",
            executor=MultiprocessExecutor(workers=workers, min_parallel_pairs=0),
        ).detect(combined)
        parallel_s = time.perf_counter() - started

        assert set(parallel.duplicate_pairs) == set(serial.duplicate_pairs)
        assert parallel.cluster_assignment == serial.cluster_assignment
        assert [
            (score.left_index, score.right_index, score.similarity)
            for score in parallel.scores
        ] == [
            (score.left_index, score.right_index, score.similarity)
            for score in serial.scores
        ]
        assert (
            parallel.filter_statistics.as_dict() == serial.filter_statistics.as_dict()
        )

        speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        rows.append(
            (
                entities,
                len(combined),
                serial.filter_statistics.compared,
                len(serial.duplicate_pairs),
                serial_s,
                parallel_s,
                speedup,
            )
        )
        records.append(
            {
                "entities": entities,
                "tuples": len(combined),
                "workers": workers,
                "compared_pairs": serial.filter_statistics.compared,
                "accepted_pairs": len(serial.duplicate_pairs),
                "serial_seconds": serial_s,
                "parallel_seconds": parallel_s,
                "speedup": speedup,
            }
        )
    print_table(
        f"E4d: serial vs parallel scoring ({workers} workers, students, token blocking)",
        ["entities", "tuples", "compared", "accepted", "serial s", "parallel s", "speedup"],
        rows,
    )

    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {"benchmark": "e4_parallel_scoring", "workers": workers, "rows": records},
                handle,
                indent=2,
            )

    benchmark.pedantic(
        lambda: DuplicateDetector(
            blocking="token",
            executor=MultiprocessExecutor(workers=workers, min_parallel_pairs=0),
        ).detect(prepare_students(sizes[0])),
        rounds=1,
        iterations=1,
    )


#: Sizes for the per-pair vs batched columnar scoring series (override with
#: ``--e4-columnar-entities`` for the CI smoke run).
COLUMNAR_ENTITY_COUNTS = [1000, 5000, 10000]

#: The acceptance bar (ISSUE 9): batched columnar kernels are at least this
#: much faster than the per-pair loop at and above this size.
COLUMNAR_SPEEDUP_ENTITIES = 5000
COLUMNAR_SPEEDUP_FLOOR = 2.0

COLUMNAR_THRESHOLD = 0.65


def test_e4_columnar_scoring(benchmark, request):
    """Per-pair vs batched columnar dedup scoring: identical bits, speedup.

    Acceptance bar for the columnar engine (ISSUE 9): the batched kernels
    (``ColumnarPairScorer`` via ``score_batch``) reproduce the per-pair
    reference loop — row tuples, one ``upper_bound`` + ``compare_rows`` call
    per candidate — **bit for bit** (same scores, same pruning counts), and
    run at least 2× faster at 5k entities.  The speedup comes from memoised
    leaf work: repeated cell values tokenise, vectorise and soft-IDF once per
    batch instead of once per pair.
    """
    entities_option = request.config.getoption("--e4-columnar-entities")
    json_path = request.config.getoption("--e4-columnar-json")
    sizes = (
        [int(value) for value in entities_option.split(",") if value.strip()]
        if entities_option
        else COLUMNAR_ENTITY_COUNTS
    )

    rows = []
    records = []
    for entities in sizes:
        combined = prepare_students(entities)
        selection = select_interesting_attributes(combined)
        measure = DuplicateSimilarityMeasure(selection).fit(combined)
        generator = CandidatePairGenerator(
            measure, filter_threshold=COLUMNAR_THRESHOLD, blocking="token"
        )
        pairs = list(generator.candidate_indices(combined))

        # -- per-pair reference: the pre-columnar scoring loop ------------------
        row_tuples = combined.rows
        started = time.perf_counter()
        reference = []
        reference_pruned = 0
        for i, j in pairs:
            if measure.upper_bound(row_tuples[i], row_tuples[j]) < COLUMNAR_THRESHOLD:
                reference_pruned += 1
                continue
            reference.append(
                (i, j, measure.compare_rows(row_tuples[i], row_tuples[j]))
            )
        perpair_s = time.perf_counter() - started

        # -- batched columnar kernels (what the executors now run) --------------
        started = time.perf_counter()
        batch = ScoringBatch.from_generator(generator, combined)
        result = score_batch(batch, pairs)
        batched_s = time.perf_counter() - started

        # bit-identical parity: same floats, same pruning decisions
        assert [
            (score.left_index, score.right_index, score.similarity)
            for score in result.scores
        ] == reference
        assert result.pruned == reference_pruned
        assert result.considered == len(pairs)

        speedup = perpair_s / batched_s if batched_s > 0 else float("inf")
        if entities >= COLUMNAR_SPEEDUP_ENTITIES:
            assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
                f"batched scoring only {speedup:.2f}x faster than per-pair "
                f"at {entities} entities (bar: {COLUMNAR_SPEEDUP_FLOOR}x)"
            )
        rows.append(
            (
                entities,
                len(combined),
                len(pairs),
                len(reference),
                perpair_s,
                batched_s,
                speedup,
            )
        )
        records.append(
            {
                "entities": entities,
                "tuples": len(combined),
                "candidate_pairs": len(pairs),
                "scored_pairs": len(reference),
                "per_pair_seconds": perpair_s,
                "batched_seconds": batched_s,
                "speedup": speedup,
            }
        )

    print_table(
        "E4h: per-pair vs batched columnar scoring (students, token blocking)",
        ["entities", "tuples", "candidates", "scored", "per-pair s", "batched s", "speedup"],
        rows,
    )

    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {"benchmark": "e4_columnar_scoring", "rows": records}, handle, indent=2
            )

    smoke = prepare_students(sizes[0] if sizes[0] <= 500 else 120)
    smoke_generator = CandidatePairGenerator(
        DuplicateSimilarityMeasure(select_interesting_attributes(smoke)).fit(smoke),
        filter_threshold=COLUMNAR_THRESHOLD,
        blocking="token",
    )
    smoke_pairs = list(smoke_generator.candidate_indices(smoke))
    benchmark.pedantic(
        lambda: score_batch(
            ScoringBatch.from_generator(smoke_generator, smoke), smoke_pairs
        ),
        rounds=1,
        iterations=1,
    )


#: Sizes for the warm-vs-cold prepared-source series.  The full-pipeline
#: comparison runs at the smaller sizes; at the largest size only the
#: preparation-bound phases (seeding statistics, candidate generation) are
#: measured in isolation, so the series stays scoring-independent.
WARM_ENTITY_COUNTS = [120, 250]
WARM_PHASE_ONLY_ENTITIES = 1000


def test_e4_warm_vs_cold(benchmark, request):
    """Prepared-source artifacts: a second fuse() over unchanged sources.

    Acceptance bar for the prepared-source layer (ISSUE 4): the warm run
    rebuilds zero artifacts and produces bit-identical output, and at 1000
    entities the preparation-bound phases — DUMAS seed discovery and
    blocking-index candidate generation — are measurably faster warm than
    cold.  Full-pipeline wall clock is reported for the smaller sizes
    (informational; scoring dominates and is warm/cold-invariant).
    """
    import repro.matching.duplicate_seed as seed_module
    from repro.config import DedupConfig, FusionConfig, PrepareConfig
    from repro.dedup.blocking import TokenBlocking
    from repro.engine.catalog import Catalog as PrepCatalog
    from repro.hummer import HumMer
    from repro.prepare import SourcePreparer

    entities_option = request.config.getoption("--e4-warm-entities")
    json_path = request.config.getoption("--e4-warm-json")
    sizes = (
        [int(value) for value in entities_option.split(",") if value.strip()]
        if entities_option
        else WARM_ENTITY_COUNTS
    )

    rows = []
    records = []

    # -- full pipeline, cold vs warm ---------------------------------------------
    for entities in sizes:
        dataset = students_scenario(
            entity_count=entities, corruption=CorruptionConfig.low(), seed=43
        )
        hummer = HumMer(config=FusionConfig(
            dedup=DedupConfig(blocking="token"), prepare=PrepareConfig(mode="lazy")
        ))
        for alias, relation in dataset.sources.items():
            hummer.register(alias, relation)
        aliases = list(dataset.sources)

        started = time.perf_counter()
        cold = hummer.fuse(aliases)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = hummer.fuse(aliases)
        warm_s = time.perf_counter() - started

        assert warm.summary()["artifacts_rebuilt"] == 0
        assert warm.summary()["artifacts_reused"] == 4 * len(aliases)
        assert warm.relation.rows == cold.relation.rows
        assert warm.relation.schema.names == cold.relation.schema.names
        assert warm.detection.cluster_assignment == cold.detection.cluster_assignment

        rows.append(
            (
                entities,
                sum(len(s) for s in cold.sources),
                "full fuse()",
                cold_s,
                warm_s,
                cold_s / warm_s if warm_s > 0 else float("inf"),
            )
        )
        records.append(
            {
                "entities": entities,
                "phase": "full_pipeline",
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "cold_timings": cold.timings.as_dict(),
                "warm_timings": warm.timings.as_dict(),
                "artifacts_reused": warm.summary()["artifacts_reused"],
                "artifacts_rebuilt": warm.summary()["artifacts_rebuilt"],
            }
        )

    # -- preparation-bound phases in isolation at the large size ------------------
    entities = WARM_PHASE_ONLY_ENTITIES
    dataset = students_scenario(
        entity_count=entities, corruption=CorruptionConfig.low(), seed=43
    )
    catalog = PrepCatalog()
    for alias, relation in dataset.sources.items():
        catalog.register(alias, relation)
    aliases = list(dataset.sources)
    prepared = SourcePreparer(catalog).prepare(aliases)
    sources = catalog.fetch_many(aliases)

    # matching: seed discovery cold vs from prepared statistics (best of 3 —
    # the tokenisation saving is real but cross-source scoring is shared, so
    # single measurements are noise-prone on busy CI runners)
    matcher = DumasMatcher()
    seed_cold_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        cold_seeds = matcher.seeder.find_seeds(sources[0], sources[1])
        seed_cold_s = min(seed_cold_s, time.perf_counter() - started)

    tokenised = []
    original_compute = seed_module.compute_seed_statistics
    seed_module.compute_seed_statistics = lambda relation, limit: tokenised.append(1) or original_compute(
        relation, limit
    )
    try:
        with prepared.seeding(matcher.seeder):
            seed_warm_s = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                warm_seeds = matcher.seeder.find_seeds(sources[0], sources[1])
                seed_warm_s = min(seed_warm_s, time.perf_counter() - started)
    finally:
        seed_module.compute_seed_statistics = original_compute
    assert warm_seeds == cold_seeds
    # warm seeding is faster *by construction*: it re-tokenises nothing
    assert tokenised == []

    # candidate generation: token index built cold vs merged from postings
    matching = MultiMatcher(matcher).match(sources)
    combined = transform_sources(sources, matching.correspondences)
    view = prepared.view(combined, matching.correspondences, matching.preferred)
    assert view is not None
    attributes = list(select_interesting_attributes(combined).attributes)

    cold_strategy = TokenBlocking()
    started = time.perf_counter()
    cold_candidates = sum(1 for _ in cold_strategy.pairs(combined, attributes))
    candidates_cold_s = time.perf_counter() - started

    warm_strategy = TokenBlocking()
    warm_strategy.index_provider = view.token_index
    started = time.perf_counter()
    warm_candidates = sum(1 for _ in warm_strategy.pairs(combined, attributes))
    candidates_warm_s = time.perf_counter() - started
    assert warm_candidates == cold_candidates

    rows.append((entities, len(combined), "seed discovery", seed_cold_s, seed_warm_s,
                 seed_cold_s / seed_warm_s if seed_warm_s > 0 else float("inf")))
    rows.append((entities, len(combined), "candidate generation", candidates_cold_s,
                 candidates_warm_s,
                 candidates_cold_s / candidates_warm_s if candidates_warm_s > 0 else float("inf")))
    records.append(
        {
            "entities": entities,
            "phase": "seed_discovery",
            "cold_seconds": seed_cold_s,
            "warm_seconds": seed_warm_s,
        }
    )
    records.append(
        {
            "entities": entities,
            "phase": "candidate_generation",
            "cold_seconds": candidates_cold_s,
            "warm_seconds": candidates_warm_s,
            "candidates": warm_candidates,
        }
    )

    # the acceptance bar: candidate generation measurably faster warm (the
    # merged index skips tokenisation outright, ~2.5-3x here), and seed
    # discovery proved tokenisation-free above — its wall-clock saving is
    # real but small relative to the warm/cold-invariant pair scoring, so it
    # is reported (table + JSON) rather than asserted, to keep CI stable.
    assert candidates_warm_s < candidates_cold_s

    print_table(
        "E4f: cold vs warm with prepared-source artifacts (students)",
        ["entities", "tuples", "phase", "cold s", "warm s", "speedup"],
        rows,
    )

    if json_path:
        with open(json_path, "w") as handle:
            json.dump({"benchmark": "e4_warm_vs_cold", "rows": records}, handle, indent=2)

    benchmark.pedantic(
        lambda: HumMer(config=FusionConfig(dedup=DedupConfig(blocking="token"))),
        rounds=1,
        iterations=1,
    )


#: Sizes for the matching-scale series (override with ``--e4-match-entities``
#: for the CI smoke run).  The full series exercises the ISSUE 6 acceptance
#: sizes: cold vs warm DUMAS matching at 1k/5k/10k entities per source.
MATCH_ENTITY_COUNTS = [1000, 5000, 10000]

#: Interactive bar for the end-to-end fuse at the largest configured size.
MATCH_FUSE_BUDGET_SECONDS = 60.0


def test_e4_matching_scale(benchmark, request):
    """Cold vs warm ``DumasMatcher.match`` plus seed-scoring candidate counts.

    Acceptance bars for the prepared-matching layer (ISSUE 6), asserted at
    every configured size:

    * the warm prepare rebuilds zero field-corpus artifacts, and the warm
      match is bit-identical to the cold one (correspondences, seeds and the
      averaged matrix, exact floats);
    * the pruned seed scorer computes cosines for < 50% of the
      posting-sharing candidate pairs (measured, reported per size);
    * the end-to-end fuse at the largest configured size completes
      interactively (< 60 s — the "past the dedup wall" headline number
      when run at the full 10k default).
    """
    from repro.config import DedupConfig, FusionConfig, PrepareConfig
    from repro.engine.catalog import Catalog as MatchCatalog
    from repro.hummer import HumMer
    from repro.prepare import FIELD_KIND, SourcePreparer

    entities_option = request.config.getoption("--e4-match-entities")
    json_path = request.config.getoption("--e4-match-json")
    sizes = (
        [int(value) for value in entities_option.split(",") if value.strip()]
        if entities_option
        else MATCH_ENTITY_COUNTS
    )

    def match_fingerprint(result):
        return (
            [
                (c.left_attribute, c.right_attribute, c.score)
                for c in result.correspondences
            ],
            [(s.left_index, s.right_index, s.similarity) for s in result.seeds],
            result.matrix.scores.tolist(),
        )

    rows = []
    records = []
    for entities in sizes:
        dataset = students_scenario(
            entity_count=entities, corruption=CorruptionConfig.low(), seed=47
        )
        catalog = MatchCatalog()
        for alias, relation in dataset.sources.items():
            catalog.register(alias, relation)
        aliases = list(dataset.sources)
        # the artifact bundle keys on object identity — match the catalog's
        # memoised fetch results, exactly what the pipeline does
        left = catalog.fetch(aliases[0])
        right = catalog.fetch(aliases[1])
        tuples = len(left) + len(right)

        cold_matcher = DumasMatcher()
        started = time.perf_counter()
        cold = cold_matcher.match(left, right)
        cold_s = time.perf_counter() - started
        scoring = cold_matcher.seeder.last_scoring.as_dict()

        preparer = SourcePreparer(catalog)
        started = time.perf_counter()
        preparer.prepare(aliases)  # cold build, priced separately
        prepare_s = time.perf_counter() - started
        prepared = preparer.prepare(aliases)
        counters = prepared.counters.as_dict()
        assert counters["rebuilt_by_kind"].get(FIELD_KIND, 0) == 0
        assert counters["reused_by_kind"][FIELD_KIND] == len(aliases)
        assert prepared.field_corpus(left, right) is not None

        warm_matcher = DumasMatcher()
        with prepared.matching(warm_matcher), prepared.seeding(warm_matcher.seeder):
            started = time.perf_counter()
            warm = warm_matcher.match(left, right)
            warm_s = time.perf_counter() - started

        assert match_fingerprint(warm) == match_fingerprint(cold)
        warm_scoring = warm_matcher.seeder.last_scoring.as_dict()
        assert warm_scoring["seed_candidates"] == scoring["seed_candidates"]
        # the pruning acceptance bar: most posting-sharing candidates are
        # proved out by their upper bound without computing the cosine
        assert scoring["seed_scored_fraction"] < 0.5

        rows.append(
            (
                entities,
                tuples,
                cold_s,
                warm_s,
                cold_s / warm_s if warm_s > 0 else float("inf"),
                scoring["seed_candidates"],
                scoring["seed_cosines"],
                scoring["seed_scored_fraction"],
            )
        )
        records.append(
            {
                "entities": entities,
                "tuples": tuples,
                "cold_match_seconds": cold_s,
                "warm_match_seconds": warm_s,
                "prepare_seconds": prepare_s,
                "seed_candidates": scoring["seed_candidates"],
                "seed_cosines": scoring["seed_cosines"],
                "seed_scored_fraction": scoring["seed_scored_fraction"],
            }
        )

    # -- end-to-end fuse at the largest size: the interactive bar -----------------
    # token blocking, like the warm-vs-cold series: its frequency cap keeps
    # the candidate count sub-quadratic at 10k (all-pairs scoring is the
    # quadratic wall this ISSUE is about staying past)
    entities = sizes[-1]
    dataset = students_scenario(
        entity_count=entities, corruption=CorruptionConfig.low(), seed=47
    )
    hummer = HumMer(config=FusionConfig(
        dedup=DedupConfig(blocking="token"), prepare=PrepareConfig(mode="lazy")
    ))
    for alias, relation in dataset.sources.items():
        hummer.register(alias, relation)
    started = time.perf_counter()
    fused = hummer.fuse(list(dataset.sources))
    fuse_s = time.perf_counter() - started
    assert len(fused.relation) > 0
    assert fuse_s < MATCH_FUSE_BUDGET_SECONDS
    records.append(
        {
            "entities": entities,
            "phase": "end_to_end_fuse",
            "fuse_seconds": fuse_s,
            "fused_rows": len(fused.relation),
            "timings": fused.timings.as_dict(),
        }
    )

    print_table(
        "E4g: cold vs warm DUMAS matching (students)",
        ["entities", "tuples", "cold s", "warm s", "speedup",
         "candidates", "cosines", "scored frac"],
        rows,
    )
    print(f"end-to-end fuse @ {entities} entities: {fuse_s:.3f}s "
          f"(budget {MATCH_FUSE_BUDGET_SECONDS:.0f}s)")

    if json_path:
        with open(json_path, "w") as handle:
            json.dump({"benchmark": "e4_matching_scale", "rows": records}, handle, indent=2)

    small = students_scenario(
        entity_count=120, corruption=CorruptionConfig.low(), seed=47
    ).source_list
    benchmark.pedantic(
        lambda: DumasMatcher().match(small[0], small[1]),
        rounds=1,
        iterations=1,
    )
