"""E2 — duplicate-detection quality vs. threshold, and filter effectiveness.

DogmatiX-style experiment (Weis & Naumann, SIGMOD 2005) on generated student
data with known ground truth:

* pairwise precision / recall / F1 of the clustered result as the similarity
  threshold sweeps from 0.4 to 0.9, at three corruption levels;
* the fraction of full comparisons the upper-bound filter saves, and that the
  filter does not change the result.

Expected shape: recall falls and precision rises with the threshold with a
best-F1 plateau in the middle; the harder the corruption, the lower the
plateau; the filter prunes a large share of comparisons "for free".
"""

from benchmarks.conftest import print_table
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.dedup.classification import classify_pairs
from repro.dedup.clustering import transitive_closure_clusters
from repro.dedup.descriptions import select_interesting_attributes
from repro.dedup.detector import DuplicateDetector
from repro.dedup.pairs import CandidatePairGenerator
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.evaluation import evaluate_clusters
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources

THRESHOLDS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
CORRUPTION_LEVELS = {
    "low": CorruptionConfig.low(),
    "medium": CorruptionConfig.medium(),
    "high": CorruptionConfig.high(),
}


def prepare(level_name):
    dataset = students_scenario(
        entity_count=60, overlap=0.4, corruption=CORRUPTION_LEVELS[level_name], seed=29
    )
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    combined = transform_sources(sources, matching.correspondences)
    truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
    return combined, truth_pairs


def test_e2_quality_vs_threshold(benchmark):
    rows = []
    prepared = {}
    for level in CORRUPTION_LEVELS:
        combined, truth_pairs = prepare(level)
        prepared[level] = (combined, truth_pairs)
        # score all pairs once, then sweep the threshold over the same scores
        selection = select_interesting_attributes(combined)
        measure = DuplicateSimilarityMeasure(selection).fit(combined)
        generator = CandidatePairGenerator(measure, filter_threshold=0.0, use_filter=False)
        scores = generator.score_pairs(combined)
        for threshold in THRESHOLDS:
            classified = classify_pairs(scores, threshold, uncertainty_band=0.0)
            accepted = classified.accepted_pairs()
            assignment = transitive_closure_clusters(len(combined), accepted)
            metrics = evaluate_clusters(assignment, truth_pairs)
            rows.append((level, threshold, metrics.precision, metrics.recall, metrics.f1))
    print_table(
        "E2a: duplicate detection P/R/F1 vs threshold (students)",
        ["corruption", "threshold", "precision", "recall", "F1"],
        rows,
    )

    # Expected shape: on low corruption there is a threshold with near-perfect F1,
    # and recall at 0.9 is no higher than recall at 0.4.
    low_rows = [row for row in rows if row[0] == "low"]
    assert max(row[4] for row in low_rows) > 0.85
    assert low_rows[-1][3] <= low_rows[0][3]

    benchmark.pedantic(
        lambda: DuplicateDetector().detect(prepared["low"][0]), rounds=1, iterations=1
    )


def test_e2_filter_effectiveness(benchmark):
    rows = []
    filtered_input = None
    for level in CORRUPTION_LEVELS:
        combined, truth_pairs = prepare(level)
        if filtered_input is None:
            filtered_input = combined
        with_filter = DuplicateDetector(use_filter=True).detect(combined)
        without_filter = DuplicateDetector(use_filter=False).detect(combined)
        same_result = with_filter.cluster_assignment == without_filter.cluster_assignment
        f1_with = evaluate_clusters(with_filter.cluster_assignment, truth_pairs).f1
        f1_without = evaluate_clusters(without_filter.cluster_assignment, truth_pairs).f1
        stats = with_filter.filter_statistics
        rows.append(
            (
                level,
                stats.considered,
                stats.compared,
                stats.pruning_ratio,
                "yes" if same_result else "no",
                f1_with,
                f1_without,
            )
        )
    print_table(
        "E2b: upper-bound filter effectiveness",
        [
            "corruption", "candidate pairs", "fully compared", "pruned fraction",
            "same clustering", "F1 with filter", "F1 without",
        ],
        rows,
    )
    # Expected shape: the filter prunes a substantial share of comparisons,
    # leaves the clustering untouched on mildly dirty data, and never hurts
    # result quality (at high corruption it even helps, by removing borderline
    # noisy pairs before the transitive closure can chain them together).
    assert rows[0][4] == "yes"
    assert any(row[3] > 0.1 for row in rows)
    assert all(row[5] >= row[6] - 0.05 for row in rows)

    benchmark.pedantic(
        lambda: DuplicateDetector(use_filter=True).detect(filtered_input),
        rounds=1,
        iterations=1,
    )
