"""E2 — duplicate-detection quality vs. threshold, and filter effectiveness.

DogmatiX-style experiment (Weis & Naumann, SIGMOD 2005) on generated student
data with known ground truth:

* pairwise precision / recall / F1 of the clustered result as the similarity
  threshold sweeps from 0.4 to 0.9, at three corruption levels;
* the fraction of full comparisons the upper-bound filter saves, and that the
  filter does not change the result.

Expected shape: recall falls and precision rises with the threshold with a
best-F1 plateau in the middle; the harder the corruption, the lower the
plateau; the filter prunes a large share of comparisons "for free".

The clustering-quality series (E2c) plants chain bridges in the generated
data and compares the pluggable clustering strategies: graph and biclique
clustering must beat plain transitive closure on pairwise precision when
chains are present, without losing recall on clean data.
"""

import json

from benchmarks.conftest import print_table
from repro.datagen.corruptor import CorruptionConfig
from repro.datagen.scenarios import students_scenario
from repro.dedup.classification import classify_pairs
from repro.dedup.clustering import transitive_closure_clusters
from repro.dedup.descriptions import select_interesting_attributes
from repro.dedup.detector import DuplicateDetector
from repro.dedup.graphcluster import resolve_clustering
from repro.dedup.pairs import CandidatePairGenerator
from repro.dedup.similarity_measure import DuplicateSimilarityMeasure
from repro.evaluation import evaluate_clusters
from repro.matching.dumas import DumasMatcher
from repro.matching.multi import MultiMatcher
from repro.matching.transform import transform_sources

THRESHOLDS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
CORRUPTION_LEVELS = {
    "low": CorruptionConfig.low(),
    "medium": CorruptionConfig.medium(),
    "high": CorruptionConfig.high(),
}
CLUSTERING_STRATEGIES = ("transitive", "graph", "biclique")
CHAIN_FRACTION = 0.6
CLUSTERING_THRESHOLD = 0.55


def prepare(level_name, chain_fraction=0.0):
    dataset = students_scenario(
        entity_count=60,
        overlap=0.4,
        corruption=CORRUPTION_LEVELS[level_name],
        seed=29,
        chain_fraction=chain_fraction,
    )
    sources = dataset.source_list
    matching = MultiMatcher(DumasMatcher()).match(sources)
    combined = transform_sources(sources, matching.correspondences)
    truth_pairs = dataset.truth.duplicate_pairs_within(dataset.combined_row_origin())
    return combined, truth_pairs, len(dataset.truth.chain_bridges)


def test_e2_quality_vs_threshold(benchmark):
    rows = []
    prepared = {}
    for level in CORRUPTION_LEVELS:
        combined, truth_pairs, _ = prepare(level)
        prepared[level] = (combined, truth_pairs)
        # score all pairs once, then sweep the threshold over the same scores
        selection = select_interesting_attributes(combined)
        measure = DuplicateSimilarityMeasure(selection).fit(combined)
        generator = CandidatePairGenerator(measure, filter_threshold=0.0, use_filter=False)
        scores = generator.score_pairs(combined)
        for threshold in THRESHOLDS:
            classified = classify_pairs(scores, threshold, uncertainty_band=0.0)
            accepted = classified.accepted_pairs()
            assignment = transitive_closure_clusters(len(combined), accepted)
            metrics = evaluate_clusters(assignment, truth_pairs)
            rows.append((level, threshold, metrics.precision, metrics.recall, metrics.f1))
    print_table(
        "E2a: duplicate detection P/R/F1 vs threshold (students)",
        ["corruption", "threshold", "precision", "recall", "F1"],
        rows,
    )

    # Expected shape: on low corruption there is a threshold with near-perfect F1,
    # and recall at 0.9 is no higher than recall at 0.4.
    low_rows = [row for row in rows if row[0] == "low"]
    assert max(row[4] for row in low_rows) > 0.85
    assert low_rows[-1][3] <= low_rows[0][3]

    benchmark.pedantic(
        lambda: DuplicateDetector().detect(prepared["low"][0]), rounds=1, iterations=1
    )


def test_e2_filter_effectiveness(benchmark):
    rows = []
    filtered_input = None
    for level in CORRUPTION_LEVELS:
        combined, truth_pairs, _ = prepare(level)
        if filtered_input is None:
            filtered_input = combined
        with_filter = DuplicateDetector(use_filter=True).detect(combined)
        without_filter = DuplicateDetector(use_filter=False).detect(combined)
        same_result = with_filter.cluster_assignment == without_filter.cluster_assignment
        f1_with = evaluate_clusters(with_filter.cluster_assignment, truth_pairs).f1
        f1_without = evaluate_clusters(without_filter.cluster_assignment, truth_pairs).f1
        stats = with_filter.filter_statistics
        rows.append(
            (
                level,
                stats.considered,
                stats.compared,
                stats.pruning_ratio,
                "yes" if same_result else "no",
                f1_with,
                f1_without,
            )
        )
    print_table(
        "E2b: upper-bound filter effectiveness",
        [
            "corruption", "candidate pairs", "fully compared", "pruned fraction",
            "same clustering", "F1 with filter", "F1 without",
        ],
        rows,
    )
    # Expected shape: the filter prunes a substantial share of comparisons,
    # leaves the clustering untouched on mildly dirty data, and never hurts
    # result quality (at high corruption it even helps, by removing borderline
    # noisy pairs before the transitive closure can chain them together).
    assert rows[0][4] == "yes"
    assert any(row[3] > 0.1 for row in rows)
    assert all(row[5] >= row[6] - 0.05 for row in rows)

    benchmark.pedantic(
        lambda: DuplicateDetector(use_filter=True).detect(filtered_input),
        rounds=1,
        iterations=1,
    )


def test_e2_clustering_quality(benchmark, request):
    """E2c — clustering strategies vs the transitive-chaining pathology.

    Scores the low-corruption students data once (clean, and with planted
    chain bridges), accepts pairs at a fixed threshold and hands the same
    scored edge set to each clustering strategy.  Graph and biclique
    clustering must strictly beat transitive closure on pairwise precision
    on the chained data while conceding nothing (precision or recall) on
    the clean data.
    """
    json_path = request.config.getoption("--e2-cluster-json")
    rows = []
    records = []
    metrics_by = {}
    chained_inputs = None
    for scenario, chain_fraction in (("clean", 0.0), ("chained", CHAIN_FRACTION)):
        combined, truth_pairs, bridges = prepare("low", chain_fraction=chain_fraction)
        selection = select_interesting_attributes(combined)
        measure = DuplicateSimilarityMeasure(selection).fit(combined)
        generator = CandidatePairGenerator(measure, filter_threshold=0.0, use_filter=False)
        scores = generator.score_pairs(combined)
        classified = classify_pairs(scores, CLUSTERING_THRESHOLD, uncertainty_band=0.0)
        edges = [
            (pair.left_index, pair.right_index, pair.similarity)
            for pair in classified.accepted_scored_pairs()
        ]
        source_labels = combined.column("sourceID")
        if scenario == "chained":
            chained_inputs = (len(combined), edges, source_labels)
        for name in CLUSTERING_STRATEGIES:
            result = resolve_clustering(name).cluster(
                len(combined), edges, sources=source_labels
            )
            metrics = evaluate_clusters(result.assignment, truth_pairs)
            metrics_by[(scenario, name)] = metrics
            rows.append(
                (
                    scenario,
                    bridges,
                    name,
                    metrics.precision,
                    metrics.recall,
                    metrics.f1,
                    result.report.chains_split,
                    result.report.edges_cut,
                )
            )
            records.append(
                {
                    "scenario": scenario,
                    "chain_bridges": bridges,
                    "strategy": name,
                    "threshold": CLUSTERING_THRESHOLD,
                    "precision": metrics.precision,
                    "recall": metrics.recall,
                    "f1": metrics.f1,
                    "clusters": result.report.clusters,
                    "largest_cluster": result.report.largest_cluster,
                    "chains_split": result.report.chains_split,
                    "edges_cut": result.report.edges_cut,
                }
            )
    print_table(
        "E2c: clustering strategy quality on clean vs chained data",
        [
            "scenario", "bridges", "strategy", "precision", "recall", "F1",
            "chains split", "edges cut",
        ],
        rows,
    )

    # Chained data: both graph-aware strategies must strictly improve
    # pairwise precision over transitive closure without losing recall.
    baseline = metrics_by[("chained", "transitive")]
    for name in ("graph", "biclique"):
        challenger = metrics_by[("chained", name)]
        assert challenger.precision > baseline.precision, name
        assert challenger.recall >= baseline.recall, name
    # Clean data: no regression on either axis.
    baseline = metrics_by[("clean", "transitive")]
    for name in ("graph", "biclique"):
        challenger = metrics_by[("clean", name)]
        assert challenger.precision >= baseline.precision, name
        assert challenger.recall >= baseline.recall, name

    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {"benchmark": "e2_clustering_quality", "rows": records},
                handle,
                indent=2,
            )

    size, edges, source_labels = chained_inputs
    benchmark.pedantic(
        lambda: resolve_clustering("biclique").cluster(size, edges, sources=source_labels),
        rounds=1,
        iterations=1,
    )
